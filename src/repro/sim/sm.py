"""Streaming Multiprocessor model (paper §5 SM contention, §4 caches).

Each SM owns: its resident-block resource accounting (threads, warps,
blocks, shared memory, registers), a constant L1 cache (§4.1), one
functional unit bank per warp scheduler (the §5 per-scheduler contention
domains), a shared-memory port, and the warp driver that steps
kernel-body generators through the discrete-event engine.

Warp→scheduler assignment is round-robin (the Section 3.1 reverse
engineering result); the Section 9 mitigation can switch it to random.

Two warp drivers coexist:

* :meth:`SM._step_warp` — the reference driver: one heap event per
  instruction (``Device(engine="events")`` and ``engine="tick"``).
* :meth:`SM._drive_warp_fast` — the cycle-skipping driver
  (``engine="fast"``, the default): while no other event is due before
  the current instruction's completion, the warp's generator is driven
  inline and the clock jumps straight to each finish time, skipping the
  heap entirely.  The deferral condition (next heap event at a time
  ``<= finish``) preserves the engine's exact FIFO-among-equals event
  order, so both drivers produce bit-identical timing — guarded by
  ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.arch.specs import GPUSpec
from repro.obs.core import CacheAccess
from repro.sim import isa
from repro.sim.cache import ConstCache
from repro.sim.engine import SimulationError
from repro.sim.functional_units import SchedulerFuBank, make_shared_banks
from repro.sim.kernel import Kernel, WarpContext
from repro.sim.resources import PipelinedPort
from repro.sim.warp import ResidentBlock, Warp

#: Latency of a shared-memory access with no bank conflicts, in cycles.
SHARED_LATENCY = 28.0

#: Minimum simulated cost of a clock() read, in cycles.
CLOCK_READ_COST = 2.0


class SM:
    """One streaming multiprocessor."""

    __slots__ = ("device", "spec", "sm_id", "l1", "fu_banks",
                 "shared_port", "instr_counter", "resident_blocks",
                 "used_threads", "used_warps", "used_shared",
                 "used_registers", "_warp_rr", "_device_info")

    def __init__(self, device: Any, sm_id: int,
                 isolated_fu_banks: bool = True) -> None:
        self.device = device
        self.spec: GPUSpec = device.spec
        self.sm_id = sm_id
        #: Shared, read-only device_info dict handed to every
        #: WarpContext (hoisted out of the per-warp start path).
        self._device_info = {
            "clock_mhz": self.spec.clock_mhz,
            "n_sms": self.spec.n_sms,
            "warp_schedulers": self.spec.warp_schedulers,
            "name": self.spec.name,
        }
        self.l1 = ConstCache(self.spec.const_l1, name=f"sm{sm_id}.constL1",
                             partition_fn=device.cache_partition_fn)
        if isolated_fu_banks:
            self.fu_banks: List[SchedulerFuBank] = [
                SchedulerFuBank(self.spec, sm_id, ws)
                for ws in range(self.spec.warp_schedulers)
            ]
        else:
            self.fu_banks = make_shared_banks(self.spec, sm_id)
        self.shared_port = PipelinedPort(name=f"sm{sm_id}.shared")
        #: Per-instruction counter, wired by the Device when metrics are
        #: on; None keeps the disabled path to one identity check.
        self.instr_counter = None

        # Occupancy accounting -----------------------------------------
        self.resident_blocks: List[ResidentBlock] = []
        self.used_threads = 0
        self.used_warps = 0
        self.used_shared = 0
        self.used_registers = 0
        self._warp_rr = 0  # round-robin warp->scheduler counter

    # ------------------------------------------------------------------
    # Occupancy / placement
    # ------------------------------------------------------------------
    def can_accept(self, kernel: Kernel) -> bool:
        """Whether one more block of ``kernel`` fits on this SM."""
        cfg = kernel.config
        if cfg.shared_mem > self.spec.max_shared_mem_per_block:
            return False
        return (
            len(self.resident_blocks) + 1 <= self.spec.max_blocks_per_sm
            and self.used_threads + cfg.block_threads
            <= self.spec.max_threads_per_sm
            and self.used_warps + cfg.warps_per_block
            <= self.spec.max_warps_per_sm
            and self.used_shared + cfg.shared_mem
            <= self.spec.shared_mem_per_sm
            and self.used_registers + cfg.registers_per_block
            <= self.spec.registers_per_sm
        )

    def place_block(self, kernel: Kernel, block_idx: int) -> ResidentBlock:
        """Place one block; spawns and starts all of its warps."""
        if not self.can_accept(kernel):
            raise RuntimeError(
                f"SM{self.sm_id} cannot accept block {block_idx} of "
                f"{kernel.name}"
            )
        cfg = kernel.config
        block = ResidentBlock(kernel, block_idx)
        self.resident_blocks.append(block)
        self.used_threads += cfg.block_threads
        self.used_warps += cfg.warps_per_block
        self.used_shared += cfg.shared_mem
        self.used_registers += cfg.registers_per_block

        now = self.device.engine.now
        record = kernel.block_records[block_idx]
        record.smid = self.sm_id
        record.start_cycle = now

        obs = self.device.obs
        if obs.metrics_on:
            obs.registry.counter("scheduler.blocks_placed").inc()
            obs.registry.gauge(f"sm{self.sm_id}.resident_warps").set(
                self.used_warps + cfg.warps_per_block)

        for w in range(cfg.warps_per_block):
            sched = self._assign_scheduler()
            warp = Warp(kernel, block_idx, w, self.sm_id, sched)
            block.warps.append(warp)
            self._start_warp(warp, block)
        return block

    def _assign_scheduler(self) -> int:
        """Pick the warp scheduler for the next warp (Section 3.1)."""
        n = self.spec.warp_schedulers
        if self.device.scheduler_assignment == "random":
            return int(self.device.rng.integers(0, n))
        sched = self._warp_rr % n
        self._warp_rr += 1
        return sched

    def _retire_block(self, block: ResidentBlock) -> None:
        cfg = block.kernel.config
        self.resident_blocks.remove(block)
        self.used_threads -= cfg.block_threads
        self.used_warps -= cfg.warps_per_block
        self.used_shared -= cfg.shared_mem
        self.used_registers -= cfg.registers_per_block
        now = self.device.engine.now
        record = block.kernel.block_records[block.block_idx]
        record.stop_cycle = now
        obs = self.device.obs
        if obs.trace_on and record.start_cycle is not None:
            obs.tracer.complete(
                f"{block.kernel.name}[{block.block_idx}]", "block",
                f"sm{self.sm_id}", record.start_cycle,
                now - record.start_cycle,
                kernel=block.kernel.name, context=block.kernel.context)
        block.kernel._block_retired(now)
        self.device.block_scheduler.dispatch()

    def evict_block(self, block: ResidentBlock) -> None:
        """Preempt a resident block (SMK policy, Section 3.2).

        Our context switch restarts the block from scratch when it is
        re-placed (the paper's SMK saves/restores state; restarting
        preserves the co-location semantics the attack cares about).
        """
        for warp in block.warps:
            warp.cancelled = True
        cfg = block.kernel.config
        self.resident_blocks.remove(block)
        self.used_threads -= cfg.block_threads
        self.used_warps -= cfg.warps_per_block
        self.used_shared -= cfg.shared_mem
        self.used_registers -= cfg.registers_per_block
        record = block.kernel.block_records[block.block_idx]
        record.smid = None
        record.start_cycle = None

    # ------------------------------------------------------------------
    # Warp driving
    # ------------------------------------------------------------------
    def _start_warp(self, warp: Warp, block: ResidentBlock) -> None:
        if warp.kernel.plan is not None and self.device._plan_warps:
            # Batched-engine plan lane: no generator, no WarpContext —
            # a slotted PlanWarpRec replays the pre-compiled ops with
            # the exact fast-path arithmetic (and is what the native
            # stretch runner accelerates).
            from repro.sim.plan import PlanWarpRec
            rec = PlanWarpRec(self, warp, block, warp.kernel.plan)
            self.device.engine.schedule(0.0, rec)
            return
        ctx = WarpContext(
            kernel=warp.kernel,
            block_idx=warp.block_idx,
            warp_in_block=warp.warp_in_block,
            smid=self.sm_id,
            resident_warp_slot=self.used_warps - 1,
            device_info=self._device_info,
        )
        warp.gen = warp.kernel.fn(ctx)
        # The first step happens "now" — warps begin executing as soon
        # as the block lands on the SM.
        if self.device._fast_warps:
            def resume() -> None:
                self._drive_warp_fast(warp, block)
            warp.resume = resume
            self.device.engine.schedule(0.0, resume)
        else:
            self.device.engine.schedule(
                0.0, lambda: self._step_warp(warp, block, None))

    def _step_warp(self, warp: Warp, block: ResidentBlock,
                   result: Any) -> None:
        if warp.cancelled:
            return
        try:
            instr = warp.gen.send(result)
        except StopIteration:
            warp.done = True
            if block.warp_finished():
                self._retire_block(block)
            return
        finish, res = self._execute(warp, block, instr)
        self.device.engine.schedule_at(
            finish, lambda: self._step_warp(warp, block, res)
        )

    def _drive_warp_fast(self, warp: Warp, block: ResidentBlock) -> None:
        """Drive a warp's generator inline until the heap interferes.

        The cycle-skipping burst loop: after executing an instruction
        that completes at ``finish``, if the next heap event is due
        *after* ``finish`` (and ``finish`` is within the engine's run
        horizon), the clock jumps straight to ``finish`` and the same
        generator is resumed inline — no heap push/pop, no per-step
        closure.  Otherwise the continuation is deferred to the heap at
        ``finish``, which reproduces the reference driver's event order
        exactly: any event already queued at the same timestamp carries
        a lower sequence number and therefore runs first in both modes.

        Inline steps are charged to ``events_executed`` so the event
        budget (runaway-kernel protection) and observability snapshots
        agree with the reference engines.
        """
        if warp.cancelled:
            return
        device = self.device
        engine = device.engine
        heap = engine._heap
        horizon = engine._horizon
        max_events = engine._max_events
        send = warp.gen.send
        result = warp.pending
        # Tracing/metrics keep firing identically on the fast path: the
        # burst simply routes each instruction through the same
        # _execute() wrapper the reference driver uses.  Attribution
        # needs every port acquire to go through the accounted path, so
        # it too disables the inlined variants.
        obs = device.obs
        plain = (self.instr_counter is None and not obs.trace_on
                 and not obs.attribution_on)
        l1 = self.l1
        l1_port = l1.port
        l1_pc = l1.spec.port_cycles
        l1_hl = l1.spec.hit_latency
        l2 = device.const_l2
        l2_port = l2.port
        l2_pc = l2.spec.port_cycles
        l2_hl = l2.spec.hit_latency
        mem_lat = self.spec.const_mem_latency
        bank = self.fu_banks[warp.scheduler_id]
        issue_port = bank.issue_port
        issue_interval = bank._issue_interval
        clock_read = device.clock.read
        ctx_id = warp.kernel.context
        mem_result = isa.MemResult
        const_load = isa.ConstLoad
        fu_op = isa.FuOp
        read_clock = isa.ReadClock
        sleep = isa.Sleep

        while True:
            try:
                instr = send(result)
            except StopIteration:
                warp.done = True
                if block.warp_finished():
                    self._retire_block(block)
                return
            now = engine.now
            if plain:
                cls = instr.__class__
                if cls is const_load:
                    addr = instr.addr
                    free = l1_port.free_at
                    start1 = now if now > free else free
                    l1_port.free_at = start1 + l1_pc
                    l1_port.busy_cycles += l1_pc
                    l1_port.requests += 1
                    l1_hit = l1.access(addr, ctx_id)
                    if l1.trace is not None:
                        l1.trace.append(CacheAccess(
                            now, l1.set_of(addr, ctx_id), ctx_id, l1_hit))
                    if l1_hit:
                        finish = start1 + l1_hl
                        res = mem_result(finish - now, "l1")
                    else:
                        free = l2_port.free_at
                        start2 = start1 if start1 > free else free
                        l2_port.free_at = start2 + l2_pc
                        l2_port.busy_cycles += l2_pc
                        l2_port.requests += 1
                        l2_hit = l2.access(addr, ctx_id)
                        if l2.trace is not None:
                            l2.trace.append(CacheAccess(
                                now, l2.set_of(addr, ctx_id), ctx_id,
                                l2_hit))
                        if l2_hit:
                            finish = start2 + l2_hl
                            res = mem_result(finish - now, "l2")
                        else:
                            finish = start2 + mem_lat
                            res = mem_result(finish - now, "mem")
                elif cls is fu_op:
                    finish = bank.execute_chain(now, instr.op, instr.count)
                    res = None
                elif cls is read_clock:
                    free = issue_port.free_at
                    start = now if now > free else free
                    issue_port.free_at = start + issue_interval
                    issue_port.busy_cycles += issue_interval
                    issue_port.requests += 1
                    finish = start + issue_interval
                    floor = now + CLOCK_READ_COST
                    if floor > finish:
                        finish = floor
                    res = clock_read(finish)
                elif cls is sleep:
                    finish = now + instr.cycles
                    res = None
                else:
                    finish, res = self._execute_instr(warp, block, instr,
                                                      now)
            else:
                finish, res = self._execute(warp, block, instr)
            if (heap and heap[0][0] <= finish) or finish > horizon:
                warp.pending = res
                engine.schedule_at(finish, warp.resume)
                return
            # Cycle-skip: jump the clock to the completion time and keep
            # driving the same warp inline.
            engine.now = finish
            count = engine._event_count + 1
            engine._event_count = count
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); "
                    "likely a runaway kernel or protocol livelock"
                )
            result = res

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------
    def _execute(self, warp: Warp, block: ResidentBlock,
                 instr: isa.Instruction) -> Tuple[float, Any]:
        now = self.device.engine.now
        finish, res = self._execute_instr(warp, block, instr, now)
        if self.instr_counter is not None:
            self.instr_counter.inc()
        obs = self.device.obs
        if obs.trace_on:
            name = instr.op if isinstance(instr, isa.FuOp) \
                else type(instr).__name__
            obs.tracer.complete(
                name, "instr",
                f"sm{self.sm_id}.ws{warp.scheduler_id}", now, finish - now,
                kernel=warp.kernel.name, warp=warp.warp_in_block)
        return finish, res

    def _execute_instr(self, warp: Warp, block: ResidentBlock,
                       instr: isa.Instruction, now: float
                       ) -> Tuple[float, Any]:
        bank = self.fu_banks[warp.scheduler_id]

        ctx_id = warp.kernel.context

        if isinstance(instr, isa.FuOp):
            finish = bank.execute_chain(now, instr.op, instr.count,
                                        context=ctx_id)
            return finish, None

        if isinstance(instr, isa.ReadClock):
            finish = max(bank.issue_only(now, context=ctx_id),
                         now + CLOCK_READ_COST)
            return finish, self.device.clock.read(finish)

        if isinstance(instr, isa.ConstLoad):
            return self._const_load(now, warp, instr.addr)

        if isinstance(instr, isa.GlobalLoad):
            finish = self.device.memory.warp_load(now, instr.addrs, ctx_id)
            return finish, isa.MemResult(finish - now, "global")

        if isinstance(instr, isa.GlobalStore):
            finish = self.device.memory.warp_store(now, instr.addrs, ctx_id)
            return finish, isa.MemResult(finish - now, "global")

        if isinstance(instr, isa.GlobalAtomic):
            finish = self.device.memory.warp_atomic(now, instr.addrs, ctx_id)
            return finish, isa.MemResult(finish - now, "atomic")

        if isinstance(instr, isa.RemoteGlobalLoad):
            fabric = self._fabric_for(instr)
            finish = fabric.remote_load(self.device.device_id, instr.peer,
                                        now, instr.addrs, ctx_id)
            return finish, isa.MemResult(finish - now, "remote")

        if isinstance(instr, isa.RemoteGlobalStore):
            fabric = self._fabric_for(instr)
            finish = fabric.remote_store(self.device.device_id, instr.peer,
                                         now, instr.addrs, ctx_id)
            return finish, isa.MemResult(finish - now, "remote")

        if isinstance(instr, isa.RemoteGlobalAtomic):
            fabric = self._fabric_for(instr)
            finish = fabric.remote_atomic(self.device.device_id, instr.peer,
                                          now, instr.addrs, ctx_id)
            return finish, isa.MemResult(finish - now, "remote-atomic")

        if isinstance(instr, isa.SharedAccess):
            start = self.shared_port.acquire(
                now, float(instr.bank_conflicts), ctx_id
            )
            finish = start + SHARED_LATENCY * instr.bank_conflicts
            return finish, isa.MemResult(finish - now, "shared")

        if isinstance(instr, isa.SharedStoreVar):
            start = self.shared_port.acquire(now, 1.0, ctx_id)
            block.shared_vars[instr.key] = instr.value
            return start + SHARED_LATENCY, None

        if isinstance(instr, isa.SharedReadVar):
            start = self.shared_port.acquire(now, 1.0, ctx_id)
            value = block.shared_vars.get(instr.key, instr.default)
            return start + SHARED_LATENCY, value

        if isinstance(instr, isa.SharedAtomicAdd):
            start = self.shared_port.acquire(now, 2.0, ctx_id)
            value = block.shared_vars.get(instr.key, 0) + instr.delta
            block.shared_vars[instr.key] = value
            return start + SHARED_LATENCY, value

        if isinstance(instr, isa.Sleep):
            return now + instr.cycles, None

        raise TypeError(f"kernel yielded a non-instruction: {instr!r}")

    def _fabric_for(self, instr: isa.Instruction):
        fabric = self.device.fabric
        if fabric is None:
            raise SimulationError(
                f"{type(instr).__name__} requires the device to be a "
                "member of a Fabric (see repro.sim.fabric); standalone "
                "devices have no interconnect")
        return fabric

    def _const_load(self, now: float, warp: Warp,
                    addr: int) -> Tuple[float, isa.MemResult]:
        ctx_id = warp.kernel.context
        l1 = self.l1
        start1 = l1.port.acquire(now, l1.spec.port_cycles, ctx_id)
        l1_hit = l1.access(addr, context=ctx_id)
        if l1.trace is not None:
            l1.trace.append(CacheAccess(
                now, l1.set_of(addr, ctx_id), ctx_id, l1_hit))
        if l1_hit:
            finish = start1 + l1.spec.hit_latency
            return finish, isa.MemResult(finish - now, "l1")
        l2 = self.device.const_l2
        start2 = l2.port.acquire(start1, l2.spec.port_cycles, ctx_id)
        l2_hit = l2.access(addr, context=ctx_id)
        if l2.trace is not None:
            l2.trace.append(CacheAccess(
                now, l2.set_of(addr, ctx_id), ctx_id, l2_hit))
        if l2_hit:
            finish = start2 + l2.spec.hit_latency
            return finish, isa.MemResult(finish - now, "l2")
        finish = start2 + self.spec.const_mem_latency
        return finish, isa.MemResult(finish - now, "mem")

    # ------------------------------------------------------------------
    def resident_contexts(self) -> set:
        """Context ids of all kernels currently resident on this SM."""
        return {b.kernel.context for b in self.resident_blocks}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SM{self.sm_id}(blocks={len(self.resident_blocks)}, "
                f"warps={self.used_warps}, shared={self.used_shared})")
