"""Warp-level instruction set for simulated kernels.

Kernels (see :mod:`repro.sim.kernel`) are Python generator functions that
``yield`` instruction objects; the SM executes each instruction, advances
simulated time, and ``send``s the result back into the generator.  The
instruction set covers everything the paper's attack and workload kernels
(Sections 4-7) need:

=================  ====================================================
instruction        models
=================  ====================================================
:class:`ReadClock` ``clock()`` — jittered cycle-counter read
:class:`ConstLoad` a warp-wide load from constant memory (L1/L2/DRAM)
:class:`GlobalLoad`/:class:`GlobalStore`  coalesced global accesses
:class:`GlobalAtomic`  ``atomicAdd`` etc. through the atomic units
:class:`SharedAccess`  a shared-memory access with bank conflicts
:class:`FuOp`      arithmetic on SP/DPU/SFU pipes (``__sinf``, ``sqrt``…)
:class:`Sleep`     idle cycles (predicated-off / stalled warp)
:class:`RemoteGlobalLoad`/:class:`RemoteGlobalStore`/:class:`RemoteGlobalAtomic`
\\                  peer-device accesses over a fabric link (multi-GPU)
=================  ====================================================

Instruction *results* (returned by ``yield``) are :class:`MemResult` for
memory operations (measured latency + servicing level), plain floats for
:class:`ReadClock`, and ``None`` otherwise.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class Instruction:
    """Marker base class for everything a kernel may yield."""

    __slots__ = ()


class ReadClock(Instruction):
    """Read the SM cycle counter (CUDA ``clock()``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ReadClock()"


class ConstLoad(Instruction):
    """Warp-wide load of one address from constant memory.

    Constant memory is broadcast: all 32 lanes read the same address, so
    a single cache access per instruction is the faithful model (this is
    why the paper's prime/probe loops are written per-warp).
    """

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        if addr < 0:
            raise ValueError("constant address must be non-negative")
        self.addr = addr

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstLoad(0x{self.addr:x})"


class GlobalLoad(Instruction):
    """Global-memory load with explicit per-thread byte addresses."""

    __slots__ = ("addrs",)

    def __init__(self, addrs: Sequence[int]) -> None:
        self.addrs: Tuple[int, ...] = tuple(addrs)
        if not self.addrs:
            raise ValueError("global load needs at least one address")

    def __repr__(self) -> str:  # pragma: no cover
        return f"GlobalLoad({len(self.addrs)} addrs)"


class GlobalStore(Instruction):
    """Global-memory store with explicit per-thread byte addresses."""

    __slots__ = ("addrs",)

    def __init__(self, addrs: Sequence[int]) -> None:
        self.addrs: Tuple[int, ...] = tuple(addrs)
        if not self.addrs:
            raise ValueError("global store needs at least one address")


class GlobalAtomic(Instruction):
    """Warp-wide atomic read-modify-write (``atomicAdd`` and friends).

    The three Section 6 scenarios are expressed purely through the
    per-thread address pattern; helpers for building them live in
    :func:`scenario_addresses`.
    """

    __slots__ = ("addrs",)

    def __init__(self, addrs: Sequence[int]) -> None:
        self.addrs: Tuple[int, ...] = tuple(addrs)
        if not self.addrs:
            raise ValueError("atomic needs at least one address")

    def __repr__(self) -> str:  # pragma: no cover
        return f"GlobalAtomic({len(self.addrs)} addrs)"


class RemoteGlobalLoad(Instruction):
    """Load from a *peer device's* global memory over the fabric.

    Requires the issuing device to be a member of a
    :class:`~repro.sim.fabric.Fabric`; ``peer`` is the target device
    index.  The access traverses the link (queueing behind in-flight
    transfers), services at the remote memory, and the data segments
    return over the link — see :meth:`repro.sim.fabric.Fabric.remote_load`.
    """

    __slots__ = ("peer", "addrs")

    def __init__(self, peer: int, addrs: Sequence[int]) -> None:
        if peer < 0:
            raise ValueError("peer device index must be non-negative")
        self.peer = peer
        self.addrs: Tuple[int, ...] = tuple(addrs)
        if not self.addrs:
            raise ValueError("remote load needs at least one address")

    def __repr__(self) -> str:  # pragma: no cover
        return f"RemoteGlobalLoad(peer={self.peer}, {len(self.addrs)} addrs)"


class RemoteGlobalStore(Instruction):
    """Store to a peer device's global memory over the fabric."""

    __slots__ = ("peer", "addrs")

    def __init__(self, peer: int, addrs: Sequence[int]) -> None:
        if peer < 0:
            raise ValueError("peer device index must be non-negative")
        self.peer = peer
        self.addrs: Tuple[int, ...] = tuple(addrs)
        if not self.addrs:
            raise ValueError("remote store needs at least one address")


class RemoteGlobalAtomic(Instruction):
    """Atomic read-modify-write on a peer device's global memory.

    Serializes at the *remote* device's atomic units after traversing
    the link — the NVBleed-style contention medium of the
    ``remote-atomic`` cross-device channel.
    """

    __slots__ = ("peer", "addrs")

    def __init__(self, peer: int, addrs: Sequence[int]) -> None:
        if peer < 0:
            raise ValueError("peer device index must be non-negative")
        self.peer = peer
        self.addrs: Tuple[int, ...] = tuple(addrs)
        if not self.addrs:
            raise ValueError("remote atomic needs at least one address")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RemoteGlobalAtomic(peer={self.peer}, "
                f"{len(self.addrs)} addrs)")


class SharedAccess(Instruction):
    """Shared-memory access; ``bank_conflicts`` serializes the access."""

    __slots__ = ("bank_conflicts",)

    def __init__(self, bank_conflicts: int = 1) -> None:
        if bank_conflicts < 1:
            raise ValueError("bank_conflicts must be >= 1")
        self.bank_conflicts = bank_conflicts


class FuOp(Instruction):
    """``count`` dependent arithmetic ops on one functional-unit type.

    ``op`` is a key of :attr:`repro.arch.specs.GPUSpec.ops` (``fadd``,
    ``fmul``, ``dadd``, ``dmul``, ``sinf``, ``sqrt``, ``iadd``…).

    ``count > 1`` executes the chain inside a single simulation event;
    this is faster but reserves the dispatch port for the whole chain, so
    contention-sensitive kernels (the attack loops) should issue
    ``count=1`` in a Python loop and let warps interleave naturally.
    """

    __slots__ = ("op", "count")

    def __init__(self, op: str, count: int = 1) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.op = op
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover
        return f"FuOp({self.op!r}, count={self.count})"


class SharedStoreVar(Instruction):
    """Store a value into block-shared memory (keyed scratchpad).

    Models a ``__shared__`` variable write; visible to all warps of the
    same thread block, never across blocks or kernels.
    """

    __slots__ = ("key", "value")

    def __init__(self, key, value) -> None:
        self.key = key
        self.value = value


class SharedReadVar(Instruction):
    """Read a block-shared variable; result is the value (or default)."""

    __slots__ = ("key", "default")

    def __init__(self, key, default=None) -> None:
        self.key = key
        self.default = default


class SharedAtomicAdd(Instruction):
    """Atomic add on a block-shared variable; result is the new value."""

    __slots__ = ("key", "delta")

    def __init__(self, key, delta: int = 1) -> None:
        self.key = key
        self.delta = delta


class Sleep(Instruction):
    """Idle for a number of cycles without touching any resource."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError("cannot sleep a negative duration")
        self.cycles = cycles


class MemResult:
    """Result of a memory instruction.

    ``latency`` is the *true* number of cycles the access took (what a
    perfectly precise timer would see); attack code should instead bracket
    accesses with :class:`ReadClock` to obtain the jittered observation.
    ``level`` reports which level serviced a constant load (``"l1"``,
    ``"l2"``, ``"mem"``) or ``"global"``/``"atomic"``/``"shared"``.

    One of these is built per memory instruction, which makes its
    constructor part of the simulator's hot path — hence a plain
    ``__slots__`` class rather than a frozen dataclass (whose guarded
    ``__setattr__`` costs several times more per instance).
    """

    __slots__ = ("latency", "level")

    def __init__(self, latency: float, level: str) -> None:
        self.latency = latency
        self.level = level

    @property
    def hit(self) -> bool:
        """Whether a constant load hit in the L1."""
        return self.level == "l1"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemResult):
            return NotImplemented
        return (self.latency, self.level) == (other.latency, other.level)

    def __hash__(self) -> int:
        return hash((self.latency, self.level))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemResult(latency={self.latency!r}, level={self.level!r})"


# ----------------------------------------------------------------------
# Address-pattern helpers (Section 6 scenarios)
# ----------------------------------------------------------------------
def scenario_addresses(scenario: int, base: int, iteration: int,
                       warp_size: int = 32, word: int = 4,
                       spread: int = 1024) -> Tuple[int, ...]:
    """Per-thread addresses for the paper's three atomic scenarios.

    * Scenario 1 — each thread atomically updates *one particular*
      address, far from its neighbours' (``spread`` bytes apart), fixed
      across iterations.
    * Scenario 2 — strided addresses, advancing each iteration; the
      warp's accesses coalesce into several independent segments.
    * Scenario 3 — consecutive word addresses: the whole warp lands in a
      single coalescing segment (the "un-coalesced" atomic case that the
      paper finds slowest, because it forfeits parallel L2 atomic units).
    """
    if scenario == 1:
        return tuple(base + t * spread for t in range(warp_size))
    if scenario == 2:
        # One 256B segment per thread, advancing within the unit period
        # so every iteration exercises the full set of atomic units.
        stride = 256
        off = (iteration % 4) * word
        return tuple(base + off + t * stride for t in range(warp_size))
    if scenario == 3:
        off = (iteration % 4) * warp_size * word
        return tuple(base + off + t * word for t in range(warp_size))
    raise ValueError(f"unknown atomic scenario: {scenario}")
