"""Issue plans: pre-compiled warp instruction lists for the batched engine.

The Section 4 prime/probe kernels are loops over a handful of
instruction shapes (constant loads on one cache set, ``clock()`` reads,
idle sleeps).  The generator programming model re-creates those
instruction objects on every warp of every launch of every bit; the
``batched`` engine mode instead *compiles* each kernel body once into a
flat tuple of opcode tuples — an issue plan — that is shared by every
warp, every launch and every replica of a :class:`~repro.sim.batch.
ReplicaBatch`, with the per-address cache set/tag geometry precomputed.

A plan is interpreted by :class:`PlanWarpRec`, a slotted callable that
replays the exact arithmetic of :meth:`repro.sim.sm.SM._drive_warp_fast`
(port acquire, LRU update, clock floor, cycle-skip deferral), so a plan
burst is bit-identical to driving the equivalent generator — guarded by
``tests/test_engine_equivalence.py``.  The same packed plan arrays feed
the compiled stretch runner in :mod:`repro.sim._native`.

Plans only exist for the *plain* observability configuration (no
instruction counter, tracer, attribution or cache partition); channels
fall back to generator bodies otherwise (see
``repro.channels.cache_common``).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.arch.specs import CacheSpec
from repro.sim.engine import SimulationError

#: Plan opcodes.  ``LOAD`` carries precomputed (addr, l1 set, l1 tag,
#: l2 set, l2 tag); ``CLOCK0``/``CLOCK1`` read the clock into the
#: warp's t0/t1 latch; ``SLEEP`` idles; ``EMIT`` is host-side only —
#: it appends ``(t1 - t0) / n`` to the warp's latency list and costs
#: neither time nor an event, exactly like the generator's arithmetic
#: between yields.
OP_LOAD = 0
OP_CLOCK0 = 1
OP_CLOCK1 = 2
OP_SLEEP = 3
OP_EMIT = 4

#: Matches repro.sim.sm.CLOCK_READ_COST (imported there from here would
#: be circular; pinned equal by tests/test_batched_engine.py).
_CLOCK_READ_COST = 2.0


def _spy_out(out: dict, block_idx: int, lats: list) -> None:
    """The spy body's result write: per-block probe latency list."""
    out.setdefault("latencies", {})[block_idx] = lats


class WarpPlan:
    """One compiled kernel body: opcode tuples plus packed arrays.

    ``ops`` drives the pure-Python :class:`PlanWarpRec`; the packed
    int/float arrays are the marshalling form the native stretch runner
    consumes (built eagerly — plans are memoized module-wide, so the
    cost is paid once per (shape, geometry)).
    """

    __slots__ = ("ops", "n_ops", "out_write",
                 "code", "s1", "t1", "s2", "t2", "f")

    def __init__(self, ops: Sequence[tuple],
                 out_write: Optional[Callable] = None) -> None:
        self.ops = tuple(ops)
        self.n_ops = len(self.ops)
        self.out_write = out_write
        n = self.n_ops
        self.code = np.zeros(n, dtype=np.int32)
        self.s1 = np.zeros(n, dtype=np.int64)
        self.t1 = np.zeros(n, dtype=np.int64)
        self.s2 = np.zeros(n, dtype=np.int64)
        self.t2 = np.zeros(n, dtype=np.int64)
        self.f = np.zeros(n, dtype=np.float64)
        for i, op in enumerate(self.ops):
            c = op[0]
            self.code[i] = c
            if c == OP_LOAD:
                _, _addr, s1, t1, s2, t2 = op
                self.s1[i] = s1
                self.t1[i] = t1
                self.s2[i] = s2
                self.t2[i] = t2
            elif c == OP_SLEEP or c == OP_EMIT:
                self.f[i] = op[1]


#: Module-wide plan memo: every replica of a batch (and every launch of
#: a transmission) shares one compiled plan per (kind, addrs,
#: iterations, idle, geometry) — the "shared memoized issue plans" of
#: ROADMAP item 3.
_PLANS: Dict[tuple, WarpPlan] = {}


def _load_op(addr: int, l1: CacheSpec, l2: CacheSpec) -> tuple:
    return (OP_LOAD, addr,
            (addr // l1.line_bytes) % l1.n_sets,
            addr // (l1.line_bytes * l1.n_sets),
            (addr // l2.line_bytes) % l2.n_sets,
            addr // (l2.line_bytes * l2.n_sets))


def _geometry_key(l1: CacheSpec, l2: CacheSpec) -> tuple:
    return (l1.line_bytes, l1.n_sets, l2.line_bytes, l2.n_sets)


def compile_trojan_plan(addrs: Sequence[int], iterations: int, bit: int,
                        l1: CacheSpec, l2: CacheSpec,
                        idle: float) -> WarpPlan:
    """Plan for ``BaselineCacheChannel._trojan_body``.

    bit=1 primes the target set ``iterations`` times; bit=0 idles for
    the matching duration per iteration (keeping 0-bits co-resident).
    """
    key = ("trojan", tuple(addrs), iterations, int(bool(bit)), idle,
           _geometry_key(l1, l2))
    plan = _PLANS.get(key)
    if plan is not None:
        return plan
    ops = []
    if bit:
        loads = [_load_op(a, l1, l2) for a in addrs]
        for _ in range(iterations):
            ops.extend(loads)
    else:
        for _ in range(iterations):
            ops.append((OP_SLEEP, idle))
    plan = _PLANS[key] = WarpPlan(ops)
    return plan


def compile_spy_plan(addrs: Sequence[int], iterations: int,
                     l1: CacheSpec, l2: CacheSpec) -> WarpPlan:
    """Plan for ``BaselineCacheChannel._spy_body``.

    Warms the probe set once, then per iteration: clock, probe every
    address, clock, emit the per-load latency.
    """
    key = ("spy", tuple(addrs), iterations, _geometry_key(l1, l2))
    plan = _PLANS.get(key)
    if plan is not None:
        return plan
    loads = [_load_op(a, l1, l2) for a in addrs]
    ops = list(loads)
    n = len(addrs)
    for _ in range(iterations):
        ops.append((OP_CLOCK0,))
        ops.extend(loads)
        ops.append((OP_CLOCK1,))
        ops.append((OP_EMIT, n))
    plan = _PLANS[key] = WarpPlan(ops, out_write=_spy_out)
    return plan


class PlanWarpRec:
    """One warp executing a :class:`WarpPlan` — the plan-lane driver.

    A slotted callable scheduled on the engine heap exactly where the
    fast path schedules ``warp.resume``: each invocation bursts plan
    ops inline (charging ``events_executed`` per op, like the fast
    path charges per instruction) until the deferral condition — next
    heap event due at or before this op's completion, or the run
    horizon exceeded — pushes the rec back onto the heap at its finish
    time.  State mirrored from the caches/ports is *aliased*, not
    copied, so interleaving with generator-driven warps stays exact.
    """

    __slots__ = ("warp", "block", "sm", "engine", "ops", "n_ops", "pc",
                 "t0", "t1", "lats", "out_write", "plan",
                 "l1_sets", "l1_ways", "l1_port", "l1_pc", "l1_hl",
                 "l1_hits", "l1_misses", "l1_set_misses",
                 "l2_sets", "l2_ways", "l2_port", "l2_pc", "l2_hl",
                 "l2_hits", "l2_misses", "l2_set_misses",
                 "mem_lat", "issue_port", "issue_interval", "clock_read")

    def __init__(self, sm, warp, block, plan: WarpPlan) -> None:
        device = sm.device
        self.warp = warp
        self.block = block
        self.sm = sm
        self.engine = device.engine
        self.plan = plan
        self.ops = plan.ops
        self.n_ops = plan.n_ops
        self.pc = 0
        self.t0 = 0.0
        self.t1 = 0.0
        self.lats: list = []
        self.out_write = plan.out_write
        l1 = sm.l1
        self.l1_sets = l1._sets
        self.l1_ways = l1._ways
        self.l1_port = l1.port
        self.l1_pc = l1.spec.port_cycles
        self.l1_hl = l1.spec.hit_latency
        self.l1_hits = l1.hit_counter
        self.l1_misses = l1.miss_counter
        self.l1_set_misses = l1.set_misses
        l2 = device.const_l2
        self.l2_sets = l2._sets
        self.l2_ways = l2._ways
        self.l2_port = l2.port
        self.l2_pc = l2.spec.port_cycles
        self.l2_hl = l2.spec.hit_latency
        self.l2_hits = l2.hit_counter
        self.l2_misses = l2.miss_counter
        self.l2_set_misses = l2.set_misses
        self.mem_lat = sm.spec.const_mem_latency
        bank = sm.fu_banks[warp.scheduler_id]
        self.issue_port = bank.issue_port
        self.issue_interval = bank._issue_interval
        self.clock_read = device.clock.read

    def __call__(self) -> None:
        warp = self.warp
        if warp.cancelled:
            return
        engine = self.engine
        heap = engine._heap
        horizon = engine._horizon
        max_events = engine._max_events
        ops = self.ops
        n_ops = self.n_ops
        pc = self.pc
        l1_sets = self.l1_sets
        l2_sets = self.l2_sets
        l1_ways = self.l1_ways
        l2_ways = self.l2_ways
        l1_port = self.l1_port
        l2_port = self.l2_port
        l1_pc = self.l1_pc
        l1_hl = self.l1_hl
        l2_pc = self.l2_pc
        l2_hl = self.l2_hl
        mem_lat = self.mem_lat
        now = engine.now
        push = _heappush
        while True:
            if pc == n_ops:
                self.pc = pc
                if self.out_write is not None:
                    self.out_write(warp.kernel.out, warp.block_idx,
                                   self.lats)
                warp.done = True
                if self.block.warp_finished():
                    self.sm._retire_block(self.block)
                return
            op = ops[pc]
            pc += 1
            code = op[0]
            if code == 0:  # OP_LOAD — inline L1→L2→mem, mirrors sm.py
                free = l1_port.free_at
                start1 = now if now > free else free
                l1_port.free_at = start1 + l1_pc
                l1_port.busy_cycles += l1_pc
                l1_port.requests += 1
                lines = l1_sets[op[2]]
                tag = op[3]
                if tag in lines:
                    lines.remove(tag)
                    lines.append(tag)
                    self.l1_hits.value += 1
                    finish = start1 + l1_hl
                else:
                    if len(lines) >= l1_ways:
                        lines.pop(0)
                    lines.append(tag)
                    self.l1_misses.value += 1
                    self.l1_set_misses[op[2]] += 1
                    free = l2_port.free_at
                    start2 = start1 if start1 > free else free
                    l2_port.free_at = start2 + l2_pc
                    l2_port.busy_cycles += l2_pc
                    l2_port.requests += 1
                    lines2 = l2_sets[op[4]]
                    tag2 = op[5]
                    if tag2 in lines2:
                        lines2.remove(tag2)
                        lines2.append(tag2)
                        self.l2_hits.value += 1
                        finish = start2 + l2_hl
                    else:
                        if len(lines2) >= l2_ways:
                            lines2.pop(0)
                        lines2.append(tag2)
                        self.l2_misses.value += 1
                        self.l2_set_misses[op[4]] += 1
                        finish = start2 + mem_lat
            elif code == 1 or code == 2:  # OP_CLOCK0 / OP_CLOCK1
                iport = self.issue_port
                interval = self.issue_interval
                free = iport.free_at
                start = now if now > free else free
                iport.free_at = start + interval
                iport.busy_cycles += interval
                iport.requests += 1
                finish = start + interval
                floor = now + _CLOCK_READ_COST
                if floor > finish:
                    finish = floor
                if code == 1:
                    self.t0 = self.clock_read(finish)
                else:
                    self.t1 = self.clock_read(finish)
            elif code == 3:  # OP_SLEEP
                finish = now + op[1]
            else:  # OP_EMIT — host-side, no time, no event
                self.lats.append((self.t1 - self.t0) / op[1])
                continue
            if (heap and heap[0][0] <= finish) or finish > horizon:
                self.pc = pc
                push(heap, (finish, engine._seq, self))
                engine._seq += 1
                return
            now = finish
            engine.now = finish
            count = engine._event_count + 1
            engine._event_count = count
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); "
                    "likely a runaway kernel or protocol livelock"
                )
