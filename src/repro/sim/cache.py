"""Set-associative cache model with LRU replacement.

Both levels of the constant-memory hierarchy (per-SM L1, device-shared
L2) are instances of :class:`ConstCache`.  The model is *stateful*: the
prime/probe channels of Section 4 work because the trojan's lines really
evict the spy's lines from the modelled sets.

An optional ``partition_fn`` hook supports the Section 9 set-partitioning
mitigation: it can remap (context, set) pairs so that different contexts
can never touch each other's sets.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.arch.specs import CacheSpec
from repro.obs.metrics import Counter
from repro.sim.resources import PipelinedPort

#: Signature of a partitioning hook: (context_id, set_index, n_sets) -> set.
PartitionFn = Callable[[int, int, int], int]


class ConstCache:
    """One level of the constant cache hierarchy."""

    def __init__(self, spec: CacheSpec, name: str = "cache",
                 partition_fn: Optional[PartitionFn] = None) -> None:
        self.spec = spec
        self.name = name
        self.partition_fn = partition_fn
        # Each set is a list of tags ordered LRU-first / MRU-last.
        self._sets: List[List[int]] = [[] for _ in range(spec.n_sets)]
        self.port = PipelinedPort(name=f"{name}.port")
        #: Always-on instruments (adopted into the device registry so
        #: snapshots and Device.reset_stats() cover them).
        self.hit_counter = Counter(f"{name}.hits")
        self.miss_counter = Counter(f"{name}.misses")
        self.set_misses: List[int] = [0] * spec.n_sets
        #: When set to a list, every access is appended as a
        #: ``(time, set_index, context, hit)`` record (the event stream
        #: the CC-Hunter-style detector consumes; see
        #: :class:`repro.obs.core.CacheAccess`).  The SM fills in the
        #: time.
        self.trace = None

    # ------------------------------------------------------------------
    def set_of(self, addr: int, context: int = 0) -> int:
        """Set index an address maps to, after optional partitioning."""
        idx = self.spec.set_index(addr)
        if self.partition_fn is not None:
            idx = self.partition_fn(context, idx, self.spec.n_sets)
            if not 0 <= idx < self.spec.n_sets:
                raise ValueError(
                    f"partition_fn returned out-of-range set {idx}"
                )
        return idx

    def access(self, addr: int, context: int = 0) -> bool:
        """Access one address; returns True on hit.  Updates LRU state."""
        idx = self.set_of(addr, context)
        # Tag must distinguish lines from different contexts even when a
        # partition remaps them into the same physical set.
        tag = (self.spec.tag(addr), context if self.partition_fn else 0)
        lines = self._sets[idx]
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            self.hit_counter.value += 1
            return True
        if len(lines) >= self.spec.ways:
            lines.pop(0)
        lines.append(tag)
        self.miss_counter.value += 1
        self.set_misses[idx] += 1
        return False

    def contains(self, addr: int, context: int = 0) -> bool:
        """Non-destructive lookup (no LRU update, no statistics)."""
        idx = self.set_of(addr, context)
        tag = (self.spec.tag(addr), context if self.partition_fn else 0)
        return tag in self._sets[idx]

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in a set."""
        return len(self._sets[set_index])

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        for lines in self._sets:
            lines.clear()

    def reset_stats(self) -> None:
        """Zero hit/miss counters."""
        self.hit_counter.reset()
        self.miss_counter.reset()
        self.set_misses = [0] * self.spec.n_sets

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Total accesses that hit (all sets, all contexts)."""
        return int(self.hit_counter.value)

    @property
    def misses(self) -> int:
        """Total accesses that missed."""
        return int(self.miss_counter.value)

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when unused)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.spec
        return (f"ConstCache({self.name}, {s.size_bytes}B, "
                f"{s.n_sets}x{s.ways}way, line={s.line_bytes}B)")
