"""Set-associative cache model with LRU replacement (paper §4.1).

Both levels of the constant-memory hierarchy the paper reverse engineers
in Section 4.1 (per-SM L1, device-shared L2) are instances of
:class:`ConstCache`.  The model is *stateful*: the prime/probe channels
of Section 4 work because the trojan's lines really evict the spy's
lines from the modelled sets.

An optional ``partition_fn`` hook supports the Section 9 set-partitioning
mitigation: it can remap (context, set) pairs so that different contexts
can never touch each other's sets.

Hot-path notes: every constant load funnels through :meth:`access`, so
the geometry divisors are precomputed at construction and, when no
partition hook is installed, tags are plain ints (no per-access tuple
allocation).  With a partition hook the tag is ``(line_tag, context)``
so remapped contexts can never alias each other's lines.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.arch.specs import CacheSpec
from repro.obs.metrics import Counter
from repro.sim.resources import PipelinedPort

#: Signature of a partitioning hook: (context_id, set_index, n_sets) -> set.
PartitionFn = Callable[[int, int, int], int]


class ConstCache:
    """One level of the constant cache hierarchy."""

    __slots__ = ("spec", "name", "partition_fn", "_sets", "port",
                 "hit_counter", "miss_counter", "set_misses", "trace",
                 "_line_bytes", "_n_sets", "_ways", "_tag_div")

    def __init__(self, spec: CacheSpec, name: str = "cache",
                 partition_fn: Optional[PartitionFn] = None) -> None:
        self.spec = spec
        self.name = name
        self.partition_fn = partition_fn
        # Each set is a list of tags ordered LRU-first / MRU-last.
        self._sets: List[list] = [[] for _ in range(spec.n_sets)]
        self.port = PipelinedPort(name=f"{name}.port")
        # Geometry, precomputed off the spec properties (each property
        # re-derives from size/line/ways — too slow for the access loop).
        self._line_bytes = spec.line_bytes
        self._n_sets = spec.n_sets
        self._ways = spec.ways
        self._tag_div = spec.line_bytes * spec.n_sets
        #: Always-on instruments (adopted into the device registry so
        #: snapshots and Device.reset_stats() cover them).
        self.hit_counter = Counter(f"{name}.hits")
        self.miss_counter = Counter(f"{name}.misses")
        self.set_misses: List[int] = [0] * spec.n_sets
        #: When set to a list, every access is appended as a
        #: ``(time, set_index, context, hit)`` record (the event stream
        #: the CC-Hunter-style detector consumes; see
        #: :class:`repro.obs.core.CacheAccess`).  The SM fills in the
        #: time.
        self.trace = None

    # ------------------------------------------------------------------
    def set_of(self, addr: int, context: int = 0) -> int:
        """Set index an address maps to, after optional partitioning."""
        idx = (addr // self._line_bytes) % self._n_sets
        if self.partition_fn is not None:
            idx = self.partition_fn(context, idx, self._n_sets)
            if not 0 <= idx < self._n_sets:
                raise ValueError(
                    f"partition_fn returned out-of-range set {idx}"
                )
        return idx

    def access(self, addr: int, context: int = 0) -> bool:
        """Access one address; returns True on hit.  Updates LRU state."""
        if self.partition_fn is None:
            idx = (addr // self._line_bytes) % self._n_sets
            tag = addr // self._tag_div
        else:
            idx = self.set_of(addr, context)
            # Tag must distinguish lines from different contexts even
            # when a partition remaps them into the same physical set.
            tag = (addr // self._tag_div, context)
        lines = self._sets[idx]
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            self.hit_counter.value += 1
            return True
        if len(lines) >= self._ways:
            lines.pop(0)
        lines.append(tag)
        self.miss_counter.value += 1
        self.set_misses[idx] += 1
        return False

    def contains(self, addr: int, context: int = 0) -> bool:
        """Non-destructive lookup (no LRU update, no statistics)."""
        if self.partition_fn is None:
            idx = (addr // self._line_bytes) % self._n_sets
            tag = addr // self._tag_div
        else:
            idx = self.set_of(addr, context)
            tag = (addr // self._tag_div, context)
        return tag in self._sets[idx]

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in a set."""
        return len(self._sets[set_index])

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        for lines in self._sets:
            lines.clear()

    def reset_stats(self) -> None:
        """Zero hit/miss counters and the port's instruments."""
        self.hit_counter.reset()
        self.miss_counter.reset()
        self.set_misses = [0] * self._n_sets
        self.port.reset_stats()

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Total accesses that hit (all sets, all contexts)."""
        return int(self.hit_counter.value)

    @property
    def misses(self) -> int:
        """Total accesses that missed."""
        return int(self.miss_counter.value)

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when unused)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.spec
        return (f"ConstCache({self.name}, {s.size_bytes}B, "
                f"{s.n_sets}x{s.ways}way, line={s.line_bytes}B)")
