"""CUDA-style events for host-side timing.

The CPU-side timing attacks the paper contrasts itself against (Jiang
et al., Section 10) measure *whole-kernel* execution time from the host.
``Event`` reproduces the ``cudaEventRecord`` / ``cudaEventElapsedTime``
API: an event recorded on a stream completes when all work previously
launched on that stream has retired.
"""

from __future__ import annotations

from typing import Any, Optional


class Event:
    """A marker in a stream's work queue with a completion timestamp."""

    __slots__ = ("device", "_cycle")

    def __init__(self, device: Any) -> None:
        self.device = device
        self._cycle: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, stream: Any) -> "Event":
        """Complete this event once the stream's queued work retires."""
        tail = stream._tail
        if tail is None or tail.done:
            self._cycle = self.device.engine.now
        else:
            tail.on_complete(lambda _k: self._capture())
        return self

    def _capture(self) -> None:
        self._cycle = self.device.engine.now

    # ------------------------------------------------------------------
    @property
    def recorded(self) -> bool:
        """Whether the event has completed."""
        return self._cycle is not None

    @property
    def cycle(self) -> float:
        """Completion time in device cycles."""
        if self._cycle is None:
            raise RuntimeError("event has not completed yet; "
                               "synchronize the device first")
        return self._cycle

    def synchronize(self) -> None:
        """Block the host until the event completes."""
        self.device.engine.run(stop_when=lambda: self.recorded)
        if not self.recorded:
            from repro.sim.engine import DeadlockError
            raise DeadlockError("event can never complete")


def elapsed_ms(start: Event, end: Event) -> float:
    """Milliseconds between two completed events (cudaEventElapsedTime)."""
    cycles = end.cycle - start.cycle
    return 1e3 * cycles / start.device.spec.clock_hz
