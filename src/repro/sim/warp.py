"""Warp and block runtime state.

A :class:`Warp` binds one generator instance of a kernel body to the SM
and warp scheduler it was assigned to; a :class:`ResidentBlock` tracks
the warps of one placed thread block so the SM can retire it (and free
its resources) when the last warp finishes.  Warp-to-scheduler
assignment is the co-residency lever of the paper's SM channels
(Sections 3.1 and 6).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.kernel import Kernel


class Warp:
    """One resident warp: a kernel-body generator plus its placement."""

    __slots__ = ("kernel", "block_idx", "warp_in_block", "sm_id",
                 "scheduler_id", "gen", "done", "cancelled",
                 "resume", "pending")

    def __init__(self, kernel: Kernel, block_idx: int, warp_in_block: int,
                 sm_id: int, scheduler_id: int) -> None:
        self.kernel = kernel
        self.block_idx = block_idx
        self.warp_in_block = warp_in_block
        self.sm_id = sm_id
        self.scheduler_id = scheduler_id
        self.gen: Optional[Generator] = None
        self.done = False
        #: Set when the block is preempted (SMK policy); pending events
        #: for a cancelled warp become no-ops.
        self.cancelled = False
        #: Fast-path resume closure, created once per warp by the SM
        #: (instead of a fresh lambda per instruction), and the
        #: instruction result it will feed back into the generator.
        self.resume = None
        self.pending = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Warp({self.kernel.name}, blk={self.block_idx}, "
                f"w={self.warp_in_block}, sm={self.sm_id}, "
                f"ws={self.scheduler_id})")


class ResidentBlock:
    """A thread block placed on an SM, tracking warp completion."""

    __slots__ = ("kernel", "block_idx", "warps", "warps_remaining",
                 "shared_vars")

    def __init__(self, kernel: Kernel, block_idx: int) -> None:
        self.kernel = kernel
        self.block_idx = block_idx
        self.warps: list = []
        self.warps_remaining = kernel.config.warps_per_block
        #: Block-shared scratchpad (``__shared__`` variables).
        self.shared_vars: dict = {}

    def warp_finished(self) -> bool:
        """Mark one warp retired; True when the whole block is done."""
        self.warps_remaining -= 1
        if self.warps_remaining < 0:
            raise RuntimeError("block retired more warps than it has")
        return self.warps_remaining == 0
