"""CUDA-style streams.

The paper uses streams for multiprogramming ("to provide a uniform
implementation including Fermi GPUs, we utilized streams"): kernels on
different streams may run concurrently; kernels on the same stream
serialize.  Launching costs real time (``launch_overhead_cycles`` plus
jitter), which is precisely the overhead the synchronized channel of
Section 7 eliminates by launching the trojan and spy exactly once.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.kernel import Kernel


class Stream:
    """An in-order launch queue sharing the device with other streams."""

    __slots__ = ("device", "stream_id", "_tail")

    def __init__(self, device: Any, stream_id: int) -> None:
        self.device = device
        self.stream_id = stream_id
        self._tail: Optional[Kernel] = None

    # ------------------------------------------------------------------
    def launch(self, kernel: Kernel) -> Kernel:
        """Asynchronously launch a kernel on this stream.

        Returns the kernel immediately (host code continues); the blocks
        reach the block scheduler after the launch overhead, and after
        any previous kernel on this stream has retired.
        """
        device = self.device
        overhead = device.launch_overhead()
        obs = device.obs
        if obs.metrics_on:
            obs.registry.counter("stream.kernels_launched").inc()
            obs.registry.histogram("stream.launch_overhead").observe(
                overhead)
        if obs.trace_on:
            # One lane per stream showing each kernel from launch-queue
            # submission to retirement.
            launched = device.engine.now
            track = f"stream{self.stream_id}"

            def emit(k: Kernel) -> None:
                obs.tracer.complete(
                    k.name, "kernel", track, launched,
                    device.engine.now - launched,
                    context=k.context, grid=k.config.grid)

            kernel.on_complete(emit)

        def submit() -> None:
            device.block_scheduler.submit(kernel)

        prev = self._tail
        self._tail = kernel
        if prev is None or prev.done:
            device.engine.schedule(overhead, submit)
        else:
            prev.on_complete(
                lambda _k: device.engine.schedule(overhead, submit)
            )
        return kernel

    def synchronize(self) -> None:
        """Block host until every kernel launched on this stream retired."""
        self.device.synchronize(stream=self)

    @property
    def idle(self) -> bool:
        """Whether the last kernel launched on this stream has retired."""
        return self._tail is None or self._tail.done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.stream_id}, idle={self.idle})"
