"""Kernel programming model.

A kernel is a Python generator function executed at *warp* granularity —
one generator instance per warp, mirroring how the paper's CUDA kernels
(Sections 4-7) are reasoned about (SIMT lanes only matter for memory
coalescing, which is expressed through per-thread address tuples in the
ISA).

.. code-block:: python

    def spy(ctx):
        t0 = yield isa.ReadClock()
        for addr in range(base, base + 2048, 512):
            yield isa.ConstLoad(addr)
        t1 = yield isa.ReadClock()
        ctx.out.setdefault("latency", []).append(t1 - t0)

    kernel = Kernel(spy, KernelConfig(grid=15, block_threads=128),
                    name="spy")

``ctx.out`` is a host-visible dict (the moral equivalent of a results
buffer copied back with ``cudaMemcpy``); ``ctx.smid`` is the SM the
warp's block landed on (the ``%smid`` register the paper reads while
reverse engineering the block scheduler).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.arch.specs import WARP_SIZE
from repro.sim.isa import Instruction

#: Type of a kernel body: a generator function taking a WarpContext.
KernelFn = Callable[["WarpContext"], Generator[Instruction, Any, None]]


@dataclass(frozen=True)
class KernelConfig:
    """Launch configuration (grid/block geometry and static resources)."""

    grid: int
    block_threads: int = WARP_SIZE
    shared_mem: int = 0
    registers_per_thread: int = 32

    def __post_init__(self) -> None:
        if self.grid < 1:
            raise ValueError("grid must have at least one block")
        if self.block_threads < 1:
            raise ValueError("blocks must have at least one thread")
        if self.shared_mem < 0 or self.registers_per_thread < 0:
            raise ValueError("static resources cannot be negative")

    @property
    def warps_per_block(self) -> int:
        """Warps needed to cover ``block_threads`` threads."""
        return math.ceil(self.block_threads / WARP_SIZE)

    @property
    def registers_per_block(self) -> int:
        """Register-file footprint of one block."""
        return self.registers_per_thread * self.block_threads


@dataclass(slots=True)
class BlockRecord:
    """Observable placement/timing facts about one thread block.

    This is exactly the information the paper collects while reverse
    engineering the block scheduler (Section 3.1): the ``%smid`` register
    plus ``clock()`` at block start and end.
    """

    block_idx: int
    smid: Optional[int] = None
    start_cycle: Optional[float] = None
    stop_cycle: Optional[float] = None


class Kernel:
    """One kernel launch: a body function plus its configuration.

    A :class:`Kernel` instance is single-use — it tracks the completion
    state of one launch.  Reuse the body/config to build a fresh one per
    launch (they are cheap).
    """

    __slots__ = ("fn", "config", "args", "name", "context", "out",
                 "block_records", "kernel_id", "submit_cycle",
                 "complete_cycle", "plan", "_blocks_done", "_on_complete")

    _next_id = 0

    def __init__(self, fn: KernelFn, config: KernelConfig,
                 args: Optional[Dict[str, Any]] = None,
                 name: Optional[str] = None,
                 context: int = 0,
                 plan: Optional[Any] = None) -> None:
        self.fn = fn
        self.config = config
        self.args: Dict[str, Any] = dict(args or {})
        #: Optional pre-compiled issue plan (:class:`repro.sim.plan.
        #: WarpPlan`).  Only honoured when the device's plan lane is
        #: active (``engine="batched"`` with plain observability);
        #: every other configuration runs ``fn`` as usual, so the same
        #: Kernel is valid under all engine modes.
        self.plan = plan
        self.name = name or getattr(fn, "__name__", "kernel")
        #: Process/context id — kernels from different contexts are the
        #: trojan/spy/bystander applications of the threat model.
        self.context = context
        self.out: Dict[str, Any] = {}
        self.block_records: List[BlockRecord] = [
            BlockRecord(block_idx=i) for i in range(config.grid)
        ]
        self.kernel_id = Kernel._next_id
        Kernel._next_id += 1

        self.submit_cycle: Optional[float] = None
        self.complete_cycle: Optional[float] = None
        self._blocks_done = 0
        self._on_complete: List[Callable[["Kernel"], None]] = []

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether every block of this launch has retired."""
        return self._blocks_done >= self.config.grid

    def on_complete(self, fn: Callable[["Kernel"], None]) -> None:
        """Register a callback fired when the kernel retires."""
        if self.done:
            fn(self)
        else:
            self._on_complete.append(fn)

    def _block_retired(self, now: float) -> None:
        """Internal: called by the SM when one of our blocks finishes."""
        self._blocks_done += 1
        if self.done:
            self.complete_cycle = now
            callbacks, self._on_complete = self._on_complete, []
            for fn in callbacks:
                fn(self)

    def smids(self) -> List[Optional[int]]:
        """Per-block SM ids, in block order (None if not yet placed)."""
        return [rec.smid for rec in self.block_records]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Kernel({self.name!r}, grid={self.config.grid}, "
                f"threads={self.config.block_threads}, ctx={self.context})")


@dataclass(slots=True)
class WarpContext:
    """Execution context handed to each warp's generator.

    Only *observable* state is exposed — what real CUDA code could learn
    through registers and intrinsics — so the reverse-engineering modules
    genuinely infer scheduler behaviour rather than peeking at it.
    """

    kernel: Kernel
    block_idx: int
    warp_in_block: int
    smid: int
    #: Index of this warp among all warps resident on its SM at placement
    #: time (observable as %warpid in CUDA; used only for bookkeeping).
    resident_warp_slot: int
    #: Device spec quantities a kernel legitimately knows (clock rate etc.)
    device_info: Dict[str, Any] = field(default_factory=dict)

    @property
    def args(self) -> Dict[str, Any]:
        """Kernel launch arguments."""
        return self.kernel.args

    @property
    def out(self) -> Dict[str, Any]:
        """Host-visible output buffer (shared by all warps of the launch)."""
        return self.kernel.out

    @property
    def thread_base(self) -> int:
        """Global index of this warp's first thread."""
        return (self.block_idx * self.kernel.config.block_threads
                + self.warp_in_block * WARP_SIZE)

    @property
    def warps_per_block(self) -> int:
        """Warps in this warp's block."""
        return self.kernel.config.warps_per_block

    @property
    def global_warp_index(self) -> int:
        """Index of this warp across the whole grid."""
        return self.block_idx * self.warps_per_block + self.warp_in_block
