"""Per-scheduler functional-unit banks.

The central Section 5 discovery of the paper is that functional-unit
contention is *isolated per warp scheduler*: only warps assigned to the
same scheduler slow each other down, because they compete for that
scheduler's issue bandwidth and dispatch ports.  This held even on
Fermi/Kepler where the unit pools are nominally soft-shared.  We model it
directly: every warp scheduler owns a 1/N slice of each unit pool, with a
dedicated dispatch port per (scheduler, unit-type) plus an issue port for
the scheduler itself.

For a dependent chain of warp-wide ops, the steady-state per-op time that
emerges is ``max(latency, W * occupancy) + overhead`` where ``W`` is the
number of active warps on the scheduler — which reproduces the plateau
then linear-steps shape of Figures 6 and 7, with the step onset at
``W = latency / occupancy`` warps per scheduler.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch.specs import GPUSpec
from repro.sim.resources import PipelinedPort

#: Per-unit metrics bundle a device wires onto a bank when its metrics
#: registry is enabled: unit -> (ops, issue_stall, dispatch_stall)
#: counters.  ``None`` (the default) keeps the hot loop free of any
#: instrumentation beyond two local float adds.
BankMetrics = Dict[str, Tuple[object, object, object]]


class SchedulerFuBank:
    """Functional units and issue bandwidth of one warp scheduler."""

    __slots__ = ("spec", "sm_id", "sched_id", "issue_port", "unit_ports",
                 "metrics", "_issue_interval", "_plans")

    def __init__(self, spec: GPUSpec, sm_id: int, sched_id: int) -> None:
        self.spec = spec
        self.sm_id = sm_id
        self.sched_id = sched_id
        prefix = f"sm{sm_id}.ws{sched_id}"
        self.issue_port = PipelinedPort(name=f"{prefix}.issue")
        self.unit_ports: Dict[str, PipelinedPort] = {
            unit: PipelinedPort(name=f"{prefix}.{unit}")
            for unit in ("sp", "dpu", "sfu", "ldst")
        }
        self.metrics: Optional[BankMetrics] = None
        self._issue_interval = spec.issue_interval
        # Lazily memoized per-op execution plans:
        # op -> (unit_port, occupancy, latency, overhead, unit).  The
        # spec lookups (dict fetch + two derived quantities) would
        # otherwise be repaid on every instruction of a dependent chain.
        self._plans: dict = {}

    # ------------------------------------------------------------------
    def fu_occupancy(self, op: str) -> float:
        """Dispatch-port cycles one warp-wide op occupies its unit pool."""
        op_spec = self.spec.op_spec(op)
        per_sched = self.spec.units_per_scheduler(op_spec.unit)
        return self.spec.warp_size * op_spec.passes / per_sched

    def _plan(self, op: str) -> tuple:
        """Resolve and memoize the execution plan for one op kind.

        Unsupported ops are *not* cached so they raise on every attempt
        (``op_spec`` raises ``UnsupportedOperation``/``KeyError``).
        """
        op_spec = self.spec.op_spec(op)
        plan = (self.unit_ports[op_spec.unit], self.fu_occupancy(op),
                op_spec.latency, op_spec.overhead, op_spec.unit)
        self._plans[op] = plan
        return plan

    def execute_chain(self, now: float, op: str, count: int,
                      context: Optional[int] = None) -> float:
        """Run ``count`` *dependent* ops of one warp; returns finish time.

        Each op first wins an issue slot from the scheduler, then
        occupies the unit dispatch port; the next op in the chain cannot
        issue until the previous result is available.
        """
        plan = self._plans.get(op)
        if plan is None:
            plan = self._plan(op)
        port, occupancy, latency, overhead, unit = plan
        interval = self._issue_interval
        iport = self.issue_port
        metrics = self.metrics
        if metrics is None and iport.waits is None:
            # Hot path: the two acquire() calls inlined, statistics
            # folded into one bulk update after the chain.  Attribution
            # (``waits`` attached) routes through acquire() instead so
            # per-context queueing is recorded.
            t = now
            for _ in range(count):
                free = iport.free_at
                issued = t if t > free else free
                iport.free_at = issued + interval
                free = port.free_at
                start = issued if issued > free else free
                port.free_at = start + occupancy
                t = start + latency + overhead
            iport.busy_cycles += interval * count
            iport.requests += count
            port.busy_cycles += occupancy * count
            port.requests += count
            return t
        t = now
        issue_stall = 0.0
        dispatch_stall = 0.0
        for _ in range(count):
            issued = iport.acquire(t, interval, context)
            start = port.acquire(issued, occupancy, context)
            issue_stall += issued - t
            dispatch_stall += start - issued
            t = start + latency + overhead
        if metrics is not None:
            ops, istall, dstall = metrics[unit]
            ops.inc(count)
            istall.inc(issue_stall)
            dstall.inc(dispatch_stall)
        return t

    def issue_only(self, now: float,
                   context: Optional[int] = None) -> float:
        """Consume one bare issue slot (clock reads, control overhead)."""
        start = self.issue_port.acquire(now, self._issue_interval, context)
        return start + self._issue_interval

    def reset(self) -> None:
        """Clear all port queues and statistics."""
        self.issue_port.reset()
        for port in self.unit_ports.values():
            port.reset()

    def reset_stats(self) -> None:
        """Zero port statistics; queue timing state is untouched."""
        self.issue_port.reset_stats()
        for port in self.unit_ports.values():
            port.reset_stats()


class SharedFuBank(SchedulerFuBank):
    """Ablation variant: unit pools globally shared across schedulers.

    Used by ``bench_ablation_scheduler_isolation`` to show that without
    per-scheduler partitioning the contention steps of Figure 6 smear out
    and the per-scheduler parallel SFU channel (Table 3) stops scaling.
    """

    __slots__ = ()

    def __init__(self, spec: GPUSpec, sm_id: int, sched_id: int,
                 shared_ports: Dict[str, PipelinedPort]) -> None:
        super().__init__(spec, sm_id, sched_id)
        self.unit_ports = shared_ports

    def fu_occupancy(self, op: str) -> float:
        op_spec = self.spec.op_spec(op)
        total_units = {
            "sp": self.spec.sp_units, "dpu": self.spec.dp_units,
            "sfu": self.spec.sfu_units, "ldst": self.spec.ldst_units,
        }[op_spec.unit]
        if total_units <= 0:
            from repro.arch.specs import UnsupportedOperation
            raise UnsupportedOperation(
                f"{self.spec.name} has no {op_spec.unit} units"
            )
        return self.spec.warp_size * op_spec.passes / total_units


def make_shared_banks(spec: GPUSpec, sm_id: int) -> list:
    """Build the ablation banks: one physical pool shared by all scheds."""
    shared = {
        unit: PipelinedPort(name=f"sm{sm_id}.shared.{unit}")
        for unit in ("sp", "dpu", "sfu", "ldst")
    }
    return [
        SharedFuBank(spec, sm_id, ws, shared)
        for ws in range(spec.warp_schedulers)
    ]
