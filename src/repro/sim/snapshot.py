"""Device snapshot/fork: capture and replay full simulation state.

Sweep-shaped workloads (the Figure 5 BER/bandwidth sweep, channel
tuning, the Section 4/5 reverse-engineering searches) run many trials
that share an identical prefix: device construction, cache warm-up,
handshake setup.  This module captures the *complete* observable state
of a quiescent :class:`~repro.sim.gpu.Device` — engine clock and event
accounting, per-SM cache arrays with LRU order, every pipelined port,
global-memory backing store, scheduler round-robin cursors, RNG state
and the metrics registry — into a picklable, content-fingerprinted
:class:`DeviceSnapshot`, and rebuilds a bit-identical device from it
(:func:`fork_device` / ``Device.fork``).

Key properties:

* **Quiescence required.**  The event heap holds closures, which are
  neither picklable nor safely rebindable to a new device, so a
  snapshot may only be taken when the device is idle: empty heap, no
  pending blocks, all streams retired.  Anything else raises
  :class:`SnapshotError`.  After ``device.synchronize()`` a device is
  quiescent.
* **Engine-mode independent.**  The heap sequence counter (``_seq``)
  advances differently under the ``fast`` engine (inline bursts skip
  the heap) than under ``events``/``tick``; it is captured for exact
  restore but *excluded* from the content fingerprint, so the same
  simulated history fingerprints identically under all three engine
  modes.
* **Trace ring excluded.**  The observability trace buffer is derived,
  unbounded diagnostic output, not simulation state; forks start with
  an empty ring.  Metrics-registry instrument values *are* restored
  (they include the always-on cache hit/miss counters the golden
  numbers depend on), but only cache counters participate in the
  fingerprint so observe-mode choices never change it.

See ``docs/performance.md`` for the snapshot-reuse workflow and
``tests/test_snapshot.py`` for the bit-identity guarantees.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.arch.serialization import spec_to_dict
from repro.arch.specs import GPUSpec
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.provenance import code_version

__all__ = [
    "SnapshotError",
    "DeviceSnapshot",
    "FabricSnapshot",
    "snapshot_device",
    "fork_device",
    "snapshot_fabric",
    "fork_fabric",
    "memoized_point",
]


class SnapshotError(RuntimeError):
    """The device cannot be snapshotted (or a snapshot failed to verify)."""


@dataclass(frozen=True)
class DeviceSnapshot:
    """Picklable capture of one quiescent device.

    ``fingerprint`` is a SHA-256 over the canonical JSON form of the
    spec, the construction config and the state payload (minus the
    engine-mode-dependent heap sequence counter and the observability
    extras), so two snapshots with equal fingerprints describe
    bit-identical simulated histories.  ``version`` records the code
    that produced the snapshot; persisted stores use it to evict stale
    entries (:class:`repro.runner.cache.SnapshotStore`).
    """

    spec: GPUSpec
    config: Dict[str, Any]
    state: Dict[str, Any]
    fingerprint: str
    version: str
    engine_mode: str


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def _port_state(port: Any) -> Tuple[float, float, int]:
    return (port.free_at, port.busy_cycles, port.requests)

def _restore_port(port: Any, state: Tuple[float, float, int]) -> None:
    port.free_at, port.busy_cycles, port.requests = state

def _cache_state(cache: Any) -> Dict[str, Any]:
    return {
        "sets": [list(lines) for lines in cache._sets],
        "hits": cache.hit_counter.value,
        "misses": cache.miss_counter.value,
        "set_misses": list(cache.set_misses),
        "port": _port_state(cache.port),
    }

def _restore_cache(cache: Any, state: Dict[str, Any]) -> None:
    cache._sets = [list(lines) for lines in state["sets"]]
    cache.hit_counter.value = state["hits"]
    cache.miss_counter.value = state["misses"]
    cache.set_misses = list(state["set_misses"])
    _restore_port(cache.port, state["port"])


def _check_quiescent(device: Any) -> None:
    engine = device.engine
    if not engine.idle():
        raise SnapshotError(
            f"device is not quiescent: {engine.pending_events} event(s) "
            "still queued (the heap holds closures and cannot be "
            "captured); call device.synchronize() first"
        )
    if device.block_scheduler.has_pending:
        raise SnapshotError(
            "device is not quiescent: thread blocks are still queued "
            "at the block scheduler"
        )
    if any(not s.idle for s in device._streams):
        raise SnapshotError(
            "device is not quiescent: a stream still has an "
            "unretired kernel"
        )
    if any(sm.resident_blocks for sm in device.sms):
        raise SnapshotError(
            "device is not quiescent: thread blocks are still "
            "resident on an SM"
        )


def _check_snapshotable(device: Any) -> None:
    from repro.sim.policies import POLICIES

    if device.cache_partition_fn is not None:
        raise SnapshotError(
            "devices with a cache_partition_fn cannot be snapshotted: "
            "the hook is an arbitrary callable with no stable "
            "serialized form"
        )
    if device.clock._rng is not device.rng:
        raise SnapshotError(
            "devices with a custom clock_model RNG cannot be "
            "snapshotted: only the default device-shared RNG wiring "
            "has a capturable state"
        )
    policy = device.block_scheduler.name
    if type(device.block_scheduler) is not POLICIES.get(policy):
        raise SnapshotError(
            f"block scheduler {type(device.block_scheduler).__name__} "
            "is not a registered policy and cannot be rebuilt by fork"
        )
    if device.obs._captured_caches is not None:
        raise SnapshotError(
            "a cache-access capture is active; stop it before "
            "snapshotting (the capture stream is transient state)"
        )
    if device.obs.attribution_on:
        raise SnapshotError(
            "contention attribution is active; call "
            "obs.stop_attribution() before snapshotting (per-context "
            "wait ledgers are transient state a fork cannot restore)"
        )


def _device_config(device: Any) -> Dict[str, Any]:
    from repro.sim.functional_units import SharedFuBank

    return {
        "seed": device.seed,
        "policy": device.block_scheduler.name,
        "isolated_fu_banks": not isinstance(device.sms[0].fu_banks[0],
                                            SharedFuBank),
        "scheduler_assignment": device.scheduler_assignment,
        "max_events": device.engine._max_events,
        "observe": device.obs.config,
    }


#: Cache hit/miss counters are restored with their caches; every other
#: registry instrument is captured here so metric state survives a fork.
def _obs_instruments(device: Any) -> list:
    cache_counters = {id(c.hit_counter) for c in
                      [device.const_l2] + [sm.l1 for sm in device.sms]}
    cache_counters |= {id(c.miss_counter) for c in
                       [device.const_l2] + [sm.l1 for sm in device.sms]}
    out = []
    for name, inst in device.obs.registry:
        if id(inst) in cache_counters:
            continue
        if isinstance(inst, Counter):
            out.append((name, "counter", inst.value))
        elif isinstance(inst, Gauge):
            out.append((name, "gauge", (inst.value, inst.peak)))
        elif isinstance(inst, Histogram):
            out.append((name, "histogram",
                        (tuple(inst.bounds), list(inst.bucket_counts),
                         inst.count, inst.total, inst.min, inst.max)))
    return out


def _restore_obs_instruments(device: Any, instruments: list) -> None:
    registry = device.obs.registry
    for name, kind, payload in instruments:
        if kind == "counter":
            registry.counter(name).value = payload
        elif kind == "gauge":
            gauge = registry.gauge(name)
            gauge.value, gauge.peak = payload
        else:
            bounds, buckets, count, total, lo, hi = payload
            hist = registry.histogram(name, bounds=tuple(bounds))
            hist.bucket_counts = list(buckets)
            hist.count, hist.total = count, total
            hist.min, hist.max = lo, hi


def _capture_state(device: Any) -> Dict[str, Any]:
    engine = device.engine
    scheduler = device.block_scheduler
    memory = device.memory
    state: Dict[str, Any] = {
        "engine": {"now": engine.now,
                   "events": engine._event_count,
                   "seq": engine._seq},
        "rng": device.rng.bit_generator.state,
        "clock": {"jitter": device.clock.jitter_cycles,
                  "granularity": device.clock.granularity},
        "const": {"ptr": device._const_ptr,
                  "allocs": dict(device._const_allocs)},
        "n_streams": len(device._streams),
        "l2": _cache_state(device.const_l2),
        "memory": {
            "channels": [_port_state(p) for p in memory.channels],
            "atomics": [_port_state(p) for p in memory.atomic_units],
            "words": dict(memory._words),
            "loads": memory.load_transactions,
            "ops": memory.atomic_ops,
        },
        "sms": [
            {
                "l1": _cache_state(sm.l1),
                "warp_rr": sm._warp_rr,
                "shared_port": _port_state(sm.shared_port),
                "banks": [
                    {"issue": _port_state(bank.issue_port),
                     "units": {unit: _port_state(port)
                               for unit, port in bank.unit_ports.items()}}
                    for bank in sm.fu_banks
                ],
            }
            for sm in device.sms
        ],
        "scheduler": {
            "rr": scheduler._rr,
            "partition_of": (
                {ctx: (r.start, r.stop) for ctx, r in
                 scheduler._partition_of.items()}
                if hasattr(scheduler, "_partition_of") else None
            ),
        },
        "obs_instruments": _obs_instruments(device),
    }
    return state


def _fingerprint(spec: GPUSpec, config: Dict[str, Any],
                 state: Dict[str, Any]) -> str:
    """Content hash of a capture, stable across engine modes.

    Excluded on purpose: the heap sequence counter (differs between
    ``fast`` and ``events`` for identical histories), the observe
    config and registry extras (observability must never change what
    counts as "the same state"), and ``max_events`` (a budget, not
    state).
    """
    payload = {
        "spec": spec_to_dict(spec),
        "config": {k: config[k] for k in
                   ("seed", "policy", "isolated_fu_banks",
                    "scheduler_assignment")},
        "engine": {"now": state["engine"]["now"],
                   "events": state["engine"]["events"]},
        "rng": state["rng"],
        "clock": state["clock"],
        "const": {"ptr": state["const"]["ptr"],
                  "allocs": sorted(state["const"]["allocs"].items())},
        "n_streams": state["n_streams"],
        "l2": state["l2"],
        "memory": {
            "channels": state["memory"]["channels"],
            "atomics": state["memory"]["atomics"],
            "words": sorted(state["memory"]["words"].items()),
            "loads": state["memory"]["loads"],
            "ops": state["memory"]["ops"],
        },
        "sms": [
            {"l1": sm["l1"], "warp_rr": sm["warp_rr"],
             "shared_port": sm["shared_port"],
             "banks": [{"issue": b["issue"],
                        "units": sorted(b["units"].items())}
                       for b in sm["banks"]]}
            for sm in state["sms"]
        ],
        "scheduler": {
            "rr": state["scheduler"]["rr"],
            "partition_of": (
                sorted(state["scheduler"]["partition_of"].items())
                if state["scheduler"]["partition_of"] is not None
                else None
            ),
        },
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def snapshot_device(device: Any) -> DeviceSnapshot:
    """Capture a quiescent device; raises :class:`SnapshotError` if not."""
    if getattr(device, "fabric", None) is not None:
        raise SnapshotError(
            f"device {device.device_id} is a member of a fabric; its "
            "engine and link state are shared with its peers, so a "
            "single-device capture would be incomplete — snapshot the "
            "whole fabric instead (Fabric.snapshot())")
    _check_quiescent(device)
    _check_snapshotable(device)
    config = _device_config(device)
    state = _capture_state(device)
    return DeviceSnapshot(
        spec=device.spec,
        config=config,
        state=state,
        fingerprint=_fingerprint(device.spec, config, state),
        version=code_version(),
        engine_mode=device.engine_mode,
    )


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def _restore_state(device: Any, state: Dict[str, Any],
                   reseed: bool) -> None:
    engine = device.engine
    engine.now = state["engine"]["now"]
    engine._event_count = state["engine"]["events"]
    engine._seq = state["engine"]["seq"]
    if not reseed:
        device.rng.bit_generator.state = state["rng"]
    device.clock.jitter_cycles = state["clock"]["jitter"]
    device.clock.granularity = state["clock"]["granularity"]
    device._const_ptr = state["const"]["ptr"]
    device._const_allocs = dict(state["const"]["allocs"])
    for _ in range(state["n_streams"]):
        device.stream()
    _restore_cache(device.const_l2, state["l2"])
    memory = device.memory
    for port, pstate in zip(memory.channels, state["memory"]["channels"]):
        _restore_port(port, pstate)
    for port, pstate in zip(memory.atomic_units, state["memory"]["atomics"]):
        _restore_port(port, pstate)
    memory._words.clear()
    memory._words.update(state["memory"]["words"])
    memory.load_transactions = state["memory"]["loads"]
    memory.atomic_ops = state["memory"]["ops"]
    for sm, sm_state in zip(device.sms, state["sms"]):
        _restore_cache(sm.l1, sm_state["l1"])
        sm._warp_rr = sm_state["warp_rr"]
        _restore_port(sm.shared_port, sm_state["shared_port"])
        for bank, bank_state in zip(sm.fu_banks, sm_state["banks"]):
            _restore_port(bank.issue_port, bank_state["issue"])
            for unit, pstate in bank_state["units"].items():
                _restore_port(bank.unit_ports[unit], pstate)
    scheduler = device.block_scheduler
    scheduler._rr = state["scheduler"]["rr"]
    partition = state["scheduler"]["partition_of"]
    if partition is not None and hasattr(scheduler, "_partition_of"):
        scheduler._partition_of = {ctx: range(start, stop)
                                   for ctx, (start, stop)
                                   in partition.items()}
    _restore_obs_instruments(device, state["obs_instruments"])


def fork_device(snapshot: DeviceSnapshot, *,
                seed: Optional[int] = None,
                engine: Optional[str] = None) -> Any:
    """Build a fresh device carrying the snapshot's exact state.

    ``engine`` overrides the engine mode (snapshots are engine-mode
    portable: a ``fast`` capture forks into an ``events`` device with
    identical observable behaviour).  ``seed`` replaces the RNG with a
    fresh ``default_rng(seed)`` instead of restoring the captured
    generator state — useful for forking many differently-seeded trials
    off one *pristine* (never-run) baseline, where a re-seeded fork is
    bit-identical to cold-constructing ``Device(spec, seed=seed)``.

    When an ambient span tracer is active (a sweep running with
    ``spans=...``) the fork is recorded as a ``snapshot-fork`` phase;
    otherwise the hook is one context-variable read.
    """
    from repro.obs import spans as obs_spans
    from repro.sim.gpu import Device

    with obs_spans.span("snapshot-fork", spec=snapshot.spec.name):
        cfg = snapshot.config
        device = Device(
            snapshot.spec,
            seed=cfg["seed"] if seed is None else seed,
            policy=cfg["policy"],
            isolated_fu_banks=cfg["isolated_fu_banks"],
            scheduler_assignment=cfg["scheduler_assignment"],
            max_events=cfg["max_events"],
            observe=cfg["observe"],
            engine=engine if engine is not None else snapshot.engine_mode,
        )
        _restore_state(device, snapshot.state, reseed=seed is not None)
        return device


# ----------------------------------------------------------------------
# Fabric snapshot / fork
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FabricSnapshot:
    """Picklable capture of one quiescent multi-device fabric.

    Holds every member device's state payload plus the per-direction
    link port timing; ``fingerprint`` covers the member fingerprints,
    the link states and the fabric topology/link parameters, with the
    same engine-mode independence as :class:`DeviceSnapshot`.
    """

    specs: Tuple[GPUSpec, ...]
    config: Dict[str, Any]
    device_states: Tuple[Dict[str, Any], ...]
    links: Dict[str, Any]
    fingerprint: str
    version: str
    engine_mode: str


def snapshot_fabric(fabric: Any) -> FabricSnapshot:
    """Capture a quiescent fabric; raises :class:`SnapshotError` if not.

    Quiescence and snapshotability are checked per member device (the
    shared heap must be empty, every stream retired on every device,
    no active attribution ledgers anywhere).
    """
    for device in fabric.devices:
        _check_quiescent(device)
        _check_snapshotable(device)
    device_states = tuple(_capture_state(d) for d in fabric.devices)
    device_fingerprints = [
        _fingerprint(d.spec, _device_config(d), state)
        for d, state in zip(fabric.devices, device_states)
    ]
    links = {
        f"{i}-{j}": {("fwd" if src == i else "rev"): _port_state(port)
                     for (src, _dst), port in link.ports.items()}
        for (i, j), link in fabric.links.items()
    }
    spec = fabric.link_spec
    config = {
        "seed": fabric.seed,
        "n_devices": fabric.n_devices,
        "link": {"latency": spec.latency,
                 "bytes_per_cycle": spec.bytes_per_cycle,
                 "flit_bytes": spec.flit_bytes},
        "sync_period": fabric.sync_period,
        "max_events": fabric.engine._max_events,
        "observe": fabric.devices[0].obs.config,
    }
    payload = {
        "devices": device_fingerprints,
        "links": {key: sorted(ports.items())
                  for key, ports in sorted(links.items())},
        "link_spec": config["link"],
        "sync_period": config["sync_period"],
        "seed": config["seed"],
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return FabricSnapshot(
        specs=tuple(d.spec for d in fabric.devices),
        config=config,
        device_states=device_states,
        links=links,
        fingerprint=hashlib.sha256(text.encode("utf-8")).hexdigest(),
        version=code_version(),
        engine_mode=fabric.engine_mode,
    )


def fork_fabric(snapshot: FabricSnapshot, *,
                engine: Optional[str] = None) -> Any:
    """Build a fresh fabric carrying the snapshot's exact state.

    Like :func:`fork_device`, snapshots are engine-mode portable; the
    restored fabric reproduces the captured fingerprint bit for bit
    (``tests/test_fabric.py`` round-trips it).
    """
    from repro.sim.fabric import Fabric, LinkSpec

    cfg = snapshot.config
    fabric = Fabric(
        list(snapshot.specs),
        seed=cfg["seed"],
        link=LinkSpec(**cfg["link"]),
        sync_period=cfg["sync_period"],
        max_events=cfg["max_events"],
        observe=cfg["observe"],
        engine=engine if engine is not None else snapshot.engine_mode,
    )
    for device, state in zip(fabric.devices, snapshot.device_states):
        # Every member captured the same shared-engine counters, so the
        # repeated engine restore is idempotent.
        _restore_state(device, state, reseed=False)
    for (i, j), link in fabric.links.items():
        stored = snapshot.links[f"{i}-{j}"]
        for (src, _dst), port in link.ports.items():
            _restore_port(port, stored["fwd" if src == i else "rev"])
    return fabric


# ----------------------------------------------------------------------
# Memoized sweep points
# ----------------------------------------------------------------------
def memoized_point(store: Any, key: str,
                   run: Callable[[], Tuple[Any, Any]]) -> Any:
    """Run one sweep point through a snapshot store, if one is given.

    ``run`` computes the point cold and returns ``(device, payload)``;
    the payload is what the sweep records.  On a store hit the recorded
    end-state snapshot is *forked and re-fingerprinted* — replay is
    only trusted when the rebuilt device reproduces the stored
    fingerprint bit for bit; a mismatch evicts the entry and recomputes.
    ``store`` is duck-typed (``get``/``put``/``evict`` — see
    :class:`repro.runner.cache.SnapshotStore`); ``None`` disables
    memoization entirely.
    """
    if store is not None:
        entry = store.get(key)
        if entry is not None:
            snap = entry["snapshot"]
            try:
                forked = fork_device(snap)
                if snapshot_device(forked).fingerprint == snap.fingerprint:
                    return entry["payload"]
            except SnapshotError:
                pass
            store.evict(key)
    device, payload = run()
    if store is not None:
        try:
            store.put(key, snapshot_device(device), payload)
        except SnapshotError:
            # A non-quiescent or unsnapshotable end state is simply
            # not memoized; the sweep still returns its result.
            pass
    return payload
