"""The simulated GPGPU device — top-level façade of the substrate.

A :class:`Device` wires together the engine, SMs, constant L2, global
memory, block scheduler and streams — the shared hardware whose
contention the paper's channels exploit (Section 4: caches; Section 6:
SM functional units; Section 7: atomics) — and exposes the host-side
API the attack and benchmark code drives:

>>> from repro.arch import KEPLER_K40C
>>> from repro.sim import Device, Kernel, KernelConfig, isa
>>> dev = Device(KEPLER_K40C)
>>> def body(ctx):
...     t0 = yield isa.ReadClock()
...     yield isa.FuOp("sinf")
...     t1 = yield isa.ReadClock()
...     ctx.out["dt"] = t1 - t0
>>> k = dev.stream().launch(Kernel(body, KernelConfig(grid=1)))
>>> dev.synchronize()
>>> k.out["dt"] > 0
True
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.arch.specs import GPUSpec
from repro.obs.core import DeviceObservability, ObserveConfig
from repro.sim.cache import ConstCache, PartitionFn
from repro.sim.engine import DeadlockError, Engine, TickEngine
from repro.sim.kernel import Kernel
from repro.sim.memory import GlobalMemory
from repro.sim.policies import make_block_scheduler
from repro.sim.sm import SM
from repro.sim.stream import Stream
from repro.sim.timing import ClockModel

#: Engine execution modes, from fastest to slowest:
#: ``batched`` runs fast-path semantics plus the plan lane — kernels
#: carrying pre-compiled issue plans execute through slotted
#: interpreters and, where available, the compiled stretch runner
#: (:mod:`repro.sim._native`); it is the engine
#: :class:`~repro.sim.batch.ReplicaBatch` forks Monte-Carlo replicas
#: onto.  ``fast`` (default) bursts warp instructions inline and skips
#: the clock straight to completion times; ``events`` schedules one
#: heap event per instruction (the readable reference); ``tick``
#: advances the clock one cycle at a time (the debugging oracle).  All
#: four are bit-identical in every observable timing.
ENGINE_MODES = ("fast", "batched", "events", "tick")


def resolve_engine_mode(engine: Optional[str] = None) -> str:
    """Engine mode an explicit argument / ``REPRO_SIM_ENGINE`` selects.

    The same resolution the :class:`Device` constructor applies, callable
    without building a device (snapshot stores key entries by engine
    mode before any device exists).
    """
    source = "engine"
    if engine is None:
        env = os.environ.get("REPRO_SIM_ENGINE")
        if env:
            engine, source = env, "env"
        else:
            engine = "fast"
    if engine not in ENGINE_MODES:
        valid = ", ".join(ENGINE_MODES)
        if source == "env":
            raise ValueError(
                f"invalid REPRO_SIM_ENGINE value {engine!r}: valid "
                f"engine modes are {valid} (unset the variable to get "
                "the default, 'fast')"
            )
        raise ValueError(
            f"engine must be one of {ENGINE_MODES}, got {engine!r}"
        )
    return engine


class Device:
    """One simulated GPGPU."""

    def __init__(self, spec: GPUSpec, *,
                 seed: int = 0,
                 policy: str = "leftover",
                 isolated_fu_banks: bool = True,
                 cache_partition_fn: Optional[PartitionFn] = None,
                 scheduler_assignment: str = "round_robin",
                 clock_model: Optional[ClockModel] = None,
                 max_events: Optional[int] = 50_000_000,
                 observe: Union[None, bool, str, ObserveConfig] = None,
                 engine: Optional[str] = None,
                 fabric: Optional[Any] = None,
                 device_id: int = 0
                 ) -> None:
        if scheduler_assignment not in ("round_robin", "random"):
            raise ValueError(
                "scheduler_assignment must be 'round_robin' or 'random'"
            )
        engine = resolve_engine_mode(engine)
        self.spec = spec
        self.seed = seed
        self.engine_mode = engine
        #: Owning :class:`~repro.sim.fabric.Fabric` (None for a
        #: standalone device) and this device's index within it.  Wired
        #: by the Fabric constructor, not meant to be passed directly.
        self.fabric = fabric
        self.device_id = device_id
        if fabric is not None:
            if engine != fabric.engine_mode:
                raise ValueError(
                    f"device engine mode {engine!r} must match its "
                    f"fabric's ({fabric.engine_mode!r}): members share "
                    "one event engine")
            # Members share the fabric's engine so cross-device event
            # ordering is the one heap's deterministic FIFO order.
            self.engine = fabric.engine
        elif engine == "batched":
            from repro.sim.batch import BatchedEngine
            self.engine = BatchedEngine(max_events=max_events)
            self.engine._device = self
        else:
            engine_cls = TickEngine if engine == "tick" else Engine
            self.engine = engine_cls(max_events=max_events)
        self.rng = np.random.default_rng(seed)
        self.clock = clock_model if clock_model is not None else ClockModel(
            jitter_cycles=spec.clock_jitter_cycles, rng=self.rng
        )
        self.cache_partition_fn = cache_partition_fn
        self.scheduler_assignment = scheduler_assignment
        self.obs = DeviceObservability(self, observe)
        self.const_l2 = ConstCache(spec.const_l2, name="constL2",
                                   partition_fn=cache_partition_fn)
        self.memory = GlobalMemory(spec.memory)
        self.memory.obs = self.obs
        self.sms: List[SM] = [
            SM(self, i, isolated_fu_banks=isolated_fu_banks)
            for i in range(spec.n_sms)
        ]
        self.block_scheduler = make_block_scheduler(policy, self)
        self._streams: List[Stream] = []
        self._const_ptr = 0
        self._const_allocs: Dict[str, int] = {}
        self._wire_observability()
        #: Whether SMs drive warps through the cycle-skipping burst
        #: loop.  Decided after observability wiring: when the engine
        #: sampler hook is installed (trace mode with
        #: ``engine_sample_every > 0``) the per-event tap must see every
        #: event, so warps fall back to the reference driver.
        self._fast_warps = (engine in ("fast", "batched")
                            and self.engine.profile_hook is None)
        #: Whether kernels carrying pre-compiled issue plans take the
        #: batched engine's plan lane (see repro.sim.plan).  Requires
        #: the burst loop — a sampler hook disables both.
        self._plan_warps = engine == "batched" and self._fast_warps

    def plan_lane_active(self) -> bool:
        """Whether launches may attach pre-compiled issue plans *now*.

        True only on a ``batched``-engine device in the plain
        observability configuration — the plan interpreters replay the
        fast path's inlined arithmetic, which (exactly like the
        ``plain`` branch of ``SM._drive_warp_fast``) bypasses the
        instruction counter, tracer, attribution ledgers, cache-access
        capture and partition remapping.  Channels consult this per
        launch and fall back to generator bodies when it is False.
        """
        if not self._plan_warps:
            return False
        obs = self.obs
        return (not obs.trace_on
                and not obs.metrics_on
                and not obs.attribution_on
                and obs._captured_caches is None
                and self.cache_partition_fn is None)

    def _wire_observability(self) -> None:
        """Adopt always-on instruments and push wiring into subsystems."""
        obs = self.obs
        registry = obs.registry
        for cache in [self.const_l2] + [sm.l1 for sm in self.sms]:
            registry.register(cache.hit_counter)
            registry.register(cache.miss_counter)
        if obs.metrics_on:
            # One aggregated (ops, issue stall, dispatch stall) counter
            # triple per unit type, shared by every scheduler bank.
            triples = {
                unit: (registry.counter(f"fu.{unit}.ops"),
                       registry.counter(f"fu.{unit}.issue_stall_cycles"),
                       registry.counter(f"fu.{unit}.dispatch_stall_cycles"))
                for unit in ("sp", "dpu", "sfu", "ldst")
            }
            instr_counter = registry.counter("warp.instructions")
            for sm in self.sms:
                sm.instr_counter = instr_counter
                for bank in sm.fu_banks:
                    bank.metrics = triples
        if (obs.trace_on and obs.config.engine_sample_every > 0
                and self.engine.profile_hook is None):
            # On a fabric's shared engine only the first member installs
            # the sampler (one tap per engine); later members see the
            # hook set and fall back to the reference warp driver too,
            # keeping every member's event stream identical.
            every = obs.config.engine_sample_every
            tracer = obs.tracer

            def sample(engine: Engine) -> None:
                if engine.events_executed % every == 0:
                    tracer.sample("engine", "engine", ts=engine.now,
                                  pending=float(engine.pending_events))

            self.engine.profile_hook = sample

    # ------------------------------------------------------------------
    # Host API
    # ------------------------------------------------------------------
    def stream(self) -> Stream:
        """Create a new stream."""
        s = Stream(self, len(self._streams))
        self._streams.append(s)
        return s

    def launch(self, kernel: Kernel, stream: Optional[Stream] = None) -> Kernel:
        """Launch a kernel (on a fresh stream unless one is given)."""
        if stream is None:
            stream = self.stream()
        return stream.launch(kernel)

    def launch_overhead(self) -> float:
        """Sample the launch overhead for one kernel launch (with jitter)."""
        jitter = self.rng.normal(0.0, self.spec.launch_jitter_cycles)
        return max(
            self.spec.launch_overhead_cycles * 0.25,
            self.spec.launch_overhead_cycles + jitter,
        )

    def synchronize(self, stream: Optional[Stream] = None,
                    kernels: Optional[List[Kernel]] = None) -> None:
        """Run the device until the given work (default: all work) retires.

        Raises :class:`DeadlockError` when progress stops with work still
        outstanding — e.g. a third-party kernel starved forever by the
        exclusive co-location trick of Section 8 while the attacker
        kernels never terminate.
        """
        if self._fast_warps:
            self._synchronize_fast(stream, kernels)
        else:
            def outstanding() -> bool:
                if kernels is not None:
                    return any(not k.done for k in kernels)
                if stream is not None:
                    return not stream.idle
                if self.block_scheduler.has_pending:
                    return True
                return any(not s.idle for s in self._streams)

            while outstanding():
                if self.engine.idle():
                    self._raise_deadlock()
                self.engine.step()
        self.host_wait(self.spec.sync_overhead_cycles)

    def _synchronize_fast(self, stream: Optional[Stream],
                          kernels: Optional[List[Kernel]]) -> None:
        """Flag-based synchronize for the fast engine.

        Instead of re-evaluating an ``outstanding()`` closure after
        every event, snapshot the kernels being waited on, count them
        down from completion callbacks, and drain the heap with the
        engine's tight :meth:`~repro.sim.engine.Engine.run_flag` loop.
        Every kernel queued at the block scheduler is (a predecessor
        of) some stream's tail, so watching the non-idle tails covers
        all outstanding work in the default case.
        """
        if kernels is not None:
            watch = [k for k in kernels if not k.done]
        elif stream is not None:
            watch = [] if stream.idle else [stream._tail]
        else:
            watch = [s._tail for s in self._streams if not s.idle]
        if not watch:
            return
        flag = [False]
        remaining = [len(watch)]

        def completed(_k: Kernel) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                flag[0] = True

        for k in watch:
            k.on_complete(completed)
        self.engine.run_flag(flag)
        if not flag[0]:
            self._raise_deadlock()

    def _raise_deadlock(self) -> None:
        blocked = [k.name for k in self.block_scheduler.pending_kernels()]
        raise DeadlockError(
            "device idle with outstanding work; blocked kernels: "
            f"{blocked or 'launch queue stalled'}"
        )

    def host_wait(self, cycles: float) -> None:
        """Advance host time; concurrent device work keeps executing."""
        target = self.engine.now + cycles
        if self._fast_warps:
            flag = [False]

            def arm() -> None:
                flag[0] = True

            self.engine.schedule_at(target, arm)
            self.engine.run_flag(flag)
            return
        flag = {"done": False}
        self.engine.schedule_at(target, lambda: flag.update(done=True))
        self.engine.run(stop_when=lambda: flag["done"])

    # ------------------------------------------------------------------
    # Constant memory allocation
    # ------------------------------------------------------------------
    def const_alloc(self, size: int, align: int = 1,
                    label: Optional[str] = None) -> int:
        """Reserve ``size`` bytes of constant memory; returns base address.

        ``align`` lets attack code place arrays on way-stride boundaries
        so their lines map to known cache sets (the paper's kernels do
        the same with `__constant__` array layout).
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align < 1:
            raise ValueError("alignment must be >= 1")
        base = ((self._const_ptr + align - 1) // align) * align
        if base + size > self.spec.const_mem_bytes:
            raise MemoryError(
                f"constant memory exhausted: need {size}B at {base}, "
                f"capacity {self.spec.const_mem_bytes}B"
            )
        self._const_ptr = base + size
        if label is not None:
            self._const_allocs[label] = base
        return base

    def const_reset(self) -> None:
        """Release all constant allocations (host-side bookkeeping only)."""
        self._const_ptr = 0
        self._const_allocs.clear()

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated cycle."""
        return self.engine.now

    def seconds_since(self, start_cycle: float) -> float:
        """Wall-clock seconds elapsed since ``start_cycle``."""
        return self.spec.cycles_to_seconds(self.engine.now - start_cycle)

    def sm_of_block(self, kernel: Kernel, block_idx: int) -> Optional[int]:
        """SM id a block was placed on (None while queued)."""
        return kernel.block_records[block_idx].smid

    def colocated_sms(self, a: Kernel, b: Kernel) -> List[int]:
        """SMs where blocks of both kernels were resident *concurrently*.

        Sequential reuse of an SM (one kernel after the other) is not
        co-location — contention channels need temporal overlap.
        """
        def windows(kernel: Kernel):
            out: Dict[int, List] = {}
            for rec in kernel.block_records:
                if rec.smid is None or rec.start_cycle is None:
                    continue
                stop = (rec.stop_cycle if rec.stop_cycle is not None
                        else float("inf"))
                out.setdefault(rec.smid, []).append(
                    (rec.start_cycle, stop))
            return out

        win_a = windows(a)
        win_b = windows(b)
        shared = []
        for smid in set(win_a) & set(win_b):
            if any(s1 < e2 and s2 < e1
                   for s1, e1 in win_a[smid]
                   for s2, e2 in win_b[smid]):
                shared.append(smid)
        return sorted(shared)

    # ------------------------------------------------------------------
    # Snapshot / fork
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture the full simulation state of this (quiescent) device.

        Returns a picklable, content-fingerprinted
        :class:`~repro.sim.snapshot.DeviceSnapshot`; raises
        :class:`~repro.sim.snapshot.SnapshotError` when the device has
        outstanding work (synchronize first) or an unsnapshotable
        configuration (``cache_partition_fn``, foreign clock RNG).
        """
        from repro.sim.snapshot import snapshot_device
        return snapshot_device(self)

    @classmethod
    def fork(cls, snapshot, *, seed=None, engine=None) -> "Device":
        """Build a new device carrying ``snapshot``'s exact state.

        The fork is bit-identical to the captured device in every
        observable (fingerprints match), under any engine mode.  See
        :func:`repro.sim.snapshot.fork_device` for the ``seed``
        override used to spawn differently-seeded trials off one
        pristine baseline.
        """
        from repro.sim.snapshot import fork_device
        return fork_device(snapshot, seed=seed, engine=engine)

    def flush_caches(self) -> None:
        """Invalidate L1s and the L2 (between independent experiments)."""
        for sm in self.sms:
            sm.l1.flush()
        self.const_l2.flush()

    def reset_stats(self) -> None:
        """Zero every instrument on the device in one call.

        Covers the caches (L1s + L2), functional-unit and shared-memory
        ports, DRAM channels and atomic units, the metrics registry and
        the trace buffer.  Simulation *state* (cache contents, port
        queue timing, clock) is untouched, so experiments can reset
        between epochs without perturbing what they measure — and can't
        accidentally mix epochs by resetting only the caches.
        """
        for sm in self.sms:
            sm.l1.reset_stats()
            sm.shared_port.reset_stats()
            for bank in sm.fu_banks:
                bank.reset_stats()
        self.const_l2.reset_stats()
        self.memory.reset_stats()
        self.obs.reset()
