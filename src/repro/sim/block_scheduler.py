"""Hardware thread-block scheduler — the "leftover" policy.

Section 3.1 of the paper reverse engineers NVIDIA's (unpublished) block
placement: blocks of the first kernel are assigned to SMs mostly
round-robin; blocks of a later kernel fill whatever capacity is *left
over*, again round-robin; otherwise they queue FIFO until an SM frees
resources.  The policy is deterministic and non-preemptive, which is
exactly what the attack exploits both to force co-residency (launch
``n_sms`` blocks per kernel) and to force *exclusive* co-residency
(saturate a resource so third-party blocks cannot be placed, Section 8).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from repro.sim.kernel import Kernel


class LeftoverBlockScheduler:
    """FIFO block queue + round-robin SM scan (current-GPU behaviour)."""

    name = "leftover"

    #: FIFO semantics: a block that fits nowhere stalls the queue.
    #: Preemptive policies (SMK) override this — an evicted resident
    #: block waiting for space must not stall newly-arrived kernels.
    head_of_line_blocking = True

    def __init__(self, device: Any) -> None:
        self.device = device
        self.pending: Deque[Tuple[Kernel, int]] = deque()
        self._rr = 0
        self._dispatching = False

    # ------------------------------------------------------------------
    def submit(self, kernel: Kernel) -> None:
        """Enqueue all blocks of a kernel (in block order) and dispatch."""
        kernel.submit_cycle = self.device.engine.now
        for b in range(kernel.config.grid):
            self.pending.append((kernel, b))
        obs = self.device.obs
        if obs.metrics_on:
            obs.registry.counter("scheduler.kernels_submitted").inc()
            obs.registry.gauge("scheduler.queue_depth").set(
                len(self.pending))
        if obs.trace_on:
            obs.tracer.instant(
                f"submit {kernel.name}", "scheduler", "blocksched",
                grid=kernel.config.grid, context=kernel.context)
        self.dispatch()

    def dispatch(self) -> None:
        """Place as many queued blocks as currently fit.

        Head-of-line blocking is deliberate: a block that fits nowhere
        stalls every block behind it, faithfully modelling the FIFO,
        non-preemptive hardware queue the paper relies on.
        """
        if self._dispatching:       # retirement during placement recurses
            return
        self._dispatching = True
        try:
            if self.head_of_line_blocking:
                while self.pending:
                    kernel, block_idx = self.pending[0]
                    sm = self._find_sm(kernel)
                    if sm is None:
                        break
                    self.pending.popleft()
                    sm.place_block(kernel, block_idx)
            else:
                progress = True
                while progress:
                    progress = False
                    for entry in list(self.pending):
                        kernel, block_idx = entry
                        sm = self._find_sm(kernel)
                        if sm is not None:
                            self.pending.remove(entry)
                            sm.place_block(kernel, block_idx)
                            progress = True
        finally:
            self._dispatching = False

    # ------------------------------------------------------------------
    def _find_sm(self, kernel: Kernel):
        """Round-robin scan for the first SM with leftover capacity."""
        sms = self.device.sms
        n = len(sms)
        for i in range(n):
            sm = sms[(self._rr + i) % n]
            if self._eligible(sm, kernel) and sm.can_accept(kernel):
                self._rr = (sm.sm_id + 1) % n
                return sm
        return None

    def _eligible(self, sm, kernel: Kernel) -> bool:
        """Policy hook: may this kernel use this SM at all?"""
        return True

    # ------------------------------------------------------------------
    def pending_kernels(self) -> List[Kernel]:
        """Kernels with at least one block still queued."""
        seen: List[Kernel] = []
        for kernel, _ in self.pending:
            if kernel not in seen:
                seen.append(kernel)
        return seen

    @property
    def has_pending(self) -> bool:
        """Whether any block is waiting for placement."""
        return bool(self.pending)
