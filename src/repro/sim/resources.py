"""Contended-resource primitives.

Contention channels are, at bottom, queueing at bounded hardware
resources.  Two primitives cover everything in the paper (cache ports
in Section 5, functional units in Section 6, atomic units in
Section 7):

* :class:`PipelinedPort` — a resource that accepts a new request every
  ``occupancy`` cycles but whose results return ``latency`` cycles later
  (dispatch ports of warp schedulers, cache ports, DRAM channels).
* :class:`UtilizationMeter` — bookkeeping for occupancy statistics, used
  by the mitigation detector (CC-Hunter style) and by tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class PipelinedPort:
    """A pipelined server: one request per ``occupancy`` cycles.

    ``acquire(now, occupancy)`` returns the cycle at which the request
    actually starts service; the caller adds its own latency on top.
    Requests queue in arrival order, which is exactly the round-robin
    service the paper observes for warps sharing a scheduler.

    ``waits`` is the opt-in contention-attribution ledger: ``None`` by
    default (the hot path pays one identity check), or a
    ``context -> cumulative wait cycles`` dict once
    :meth:`~repro.obs.core.DeviceObservability.start_attribution`
    attaches one.  Callers that know the requester pass ``context`` to
    :meth:`acquire`; anonymous callers accumulate under ``None``.
    """

    __slots__ = ("name", "free_at", "busy_cycles", "requests", "waits")

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self.free_at: float = 0.0
        self.busy_cycles: float = 0.0
        self.requests: int = 0
        self.waits: Optional[Dict[Optional[int], float]] = None

    def acquire(self, now: float, occupancy: float,
                context: Optional[int] = None) -> float:
        """Reserve the port for ``occupancy`` cycles; return start time."""
        if occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        start = now if now > self.free_at else self.free_at
        self.free_at = start + occupancy
        self.busy_cycles += occupancy
        self.requests += 1
        waits = self.waits
        if waits is not None and start > now:
            waits[context] = waits.get(context, 0.0) + (start - now)
        return start

    def wait_time(self, now: float) -> float:
        """Cycles a request issued now would wait before service."""
        return max(0.0, self.free_at - now)

    def reset(self) -> None:
        """Clear queue state and statistics."""
        self.free_at = 0.0
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the statistics without disturbing queue state.

        ``Device.reset_stats`` uses this between experiment epochs:
        in-flight timing (``free_at``) must be preserved or the reset
        itself would perturb the simulation.
        """
        self.busy_cycles = 0.0
        self.requests = 0
        if self.waits is not None:
            self.waits.clear()


class UtilizationMeter:
    """Records (time, value) samples of a resource's utilization.

    The contention detector in :mod:`repro.mitigations.detector` consumes
    these traces to look for the alternating bursty pattern that covert
    timing channels produce.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        self.samples.append((time, value))

    def window_mean(self, start: float, end: float) -> float:
        """Mean sample value within ``[start, end)`` (0.0 when empty)."""
        vals = [v for t, v in self.samples if start <= t < end]
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def clear(self) -> None:
        """Drop all samples."""
        self.samples.clear()
