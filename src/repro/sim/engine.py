"""Discrete-event simulation engine.

A minimal, fast event loop: callbacks are scheduled at absolute cycle
times on a binary heap and executed in time order (FIFO among equal
timestamps).  The engine knows nothing about GPUs; SMs, caches and the
block scheduler all hang their work off it.

Cycle times are floats so that sub-cycle dispatch intervals (e.g. a warp
``fadd`` occupying a Kepler scheduler for 32/48 of a cycle) compose
exactly.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when work remains but no event can make progress."""


class Engine:
    """Event-driven simulation clock.

    >>> eng = Engine()
    >>> fired = []
    >>> eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    __slots__ = ("now", "_heap", "_seq", "_max_events", "_event_count",
                 "profile_hook")

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._max_events = max_events
        self._event_count = 0
        #: Optional observability tap called as ``hook(engine)`` after
        #: every executed event.  The engine stays GPU-agnostic: the
        #: device's obs layer installs a sampler here when tracing.
        self.profile_hook: Optional[Callable[["Engine"], None]] = None

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay}")
        self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute cycle ``time`` (``time >= now``)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total events executed since construction."""
        return self._event_count

    def idle(self) -> bool:
        """True when no events are queued."""
        return not self._heap

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self.now = time
        self._event_count += 1
        if self._max_events is not None and self._event_count > self._max_events:
            raise SimulationError(
                f"event budget exceeded ({self._max_events}); "
                "likely a runaway kernel or protocol livelock"
            )
        fn()
        if self.profile_hook is not None:
            self.profile_hook(self)
        return True

    def run(self, until: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Drain the event queue.

        ``until`` bounds simulated time; ``stop_when`` is checked after
        every event and stops the loop early when it returns True (the
        queue is left intact so the run can be resumed).
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
            if stop_when is not None and stop_when():
                return

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (host-side busy time)."""
        if time < self.now:
            raise ValueError("cannot move the clock backwards")
        self.now = time
