"""Discrete-event simulation engine.

A minimal, fast event loop: callbacks are scheduled at absolute cycle
times on a binary heap and executed in time order (FIFO among equal
timestamps).  The engine knows nothing about GPUs; SMs, caches and the
block scheduler all hang their work off it — it is the timing substrate
under every contention model of the paper (Sections 5-7).

Cycle times are floats so that sub-cycle dispatch intervals (e.g. a warp
``fadd`` occupying a Kepler scheduler for 32/48 of a cycle) compose
exactly.

Two engines share this module:

* :class:`Engine` — the production event loop.  The SM's fast path
  (``Device(engine="fast")``) additionally *bursts* a warp's
  instructions inline, jumping ``now`` straight to each completion time
  while no other event is due — the cycle-skipping described in
  docs/simulator.md.  The engine cooperates by exposing the burst
  horizon (``_horizon``) that ``run(until=...)`` narrows.
* :class:`TickEngine` — a cycle-by-cycle reference oracle
  (``Device(engine="tick")``): the clock only ever advances one whole
  cycle at a time, executing events as their cycle arrives.  It is
  deliberately slow and exists so differential tests can prove the fast
  path never changes an observable timing.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when work remains but no event can make progress."""


class Engine:
    """Event-driven simulation clock.

    >>> eng = Engine()
    >>> fired = []
    >>> eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    __slots__ = ("now", "_heap", "_seq", "_max_events", "_event_count",
                 "_horizon", "profile_hook")

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._max_events = max_events
        self._event_count = 0
        #: Time bound the SM fast path must not burst past.  Infinite
        #: except while ``run(until=...)`` is draining, so that inline
        #: bursts leave exactly the same pending work behind as
        #: event-at-a-time execution would.
        self._horizon: float = math.inf
        #: Optional observability tap called as ``hook(engine)`` after
        #: every executed event.  The engine stays GPU-agnostic: the
        #: device's obs layer installs a sampler here when tracing.
        self.profile_hook: Optional[Callable[["Engine"], None]] = None

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay}")
        self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute cycle ``time`` (``time >= now``)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total events executed since construction."""
        return self._event_count

    def idle(self) -> bool:
        """True when no events are queued."""
        return not self._heap

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self.now = time
        self._event_count += 1
        if self._max_events is not None and self._event_count > self._max_events:
            raise SimulationError(
                f"event budget exceeded ({self._max_events}); "
                "likely a runaway kernel or protocol livelock"
            )
        fn()
        if self.profile_hook is not None:
            self.profile_hook(self)
        return True

    def run(self, until: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Drain the event queue.

        ``until`` bounds simulated time; ``stop_when`` is checked after
        every event and stops the loop early when it returns True (the
        queue is left intact so the run can be resumed).
        """
        if until is None:
            while self._heap:
                self.step()
                if stop_when is not None and stop_when():
                    return
            return
        prev_horizon = self._horizon
        self._horizon = until
        try:
            while self._heap:
                if self._heap[0][0] > until:
                    self.now = until
                    return
                self.step()
                if stop_when is not None and stop_when():
                    return
        finally:
            self._horizon = prev_horizon

    def run_flag(self, flag: List[bool]) -> None:
        """Drain events until ``flag[0]`` turns true (fast-path sync).

        A tight version of ``run(stop_when=...)`` for the flag-cell
        completion protocol ``Device.synchronize`` uses on the fast
        path: no per-event closure call, just a list-cell read.  Returns
        with ``flag[0]`` still false when the queue drains first — the
        caller decides whether that is a deadlock.
        """
        heap = self._heap
        pop = heapq.heappop
        max_events = self._max_events
        hook = self.profile_hook
        while not flag[0]:
            if not heap:
                return
            time, _, fn = pop(heap)
            self.now = time
            self._event_count += 1
            if max_events is not None and self._event_count > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); "
                    "likely a runaway kernel or protocol livelock"
                )
            fn()
            if hook is not None:
                hook(self)

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (host-side busy time)."""
        if time < self.now:
            raise ValueError("cannot move the clock backwards")
        self.now = time


class TickEngine(Engine):
    """Cycle-by-cycle reference engine (the debugging oracle).

    ``step()`` executes the next event only if it is due within the
    current cycle; otherwise the clock advances exactly one cycle and
    no event runs.  Every simulated cycle is therefore visited, which
    is what "tick-by-tick" means in the differential tests: the fast
    engine must produce bit-identical results while skipping all the
    empty cycles this engine grinds through.

    Idle ticks do not count toward ``events_executed`` or the
    ``max_events`` budget, so event accounting matches :class:`Engine`
    exactly.
    """

    __slots__ = ()

    def step(self) -> bool:
        """Advance one cycle, executing the next event if it is due."""
        if not self._heap:
            return False
        next_cycle = math.floor(self.now) + 1.0
        if self._heap[0][0] <= next_cycle:
            return super().step()
        self.now = next_cycle
        return True
