"""Compiled stretch runner for the ``batched`` engine mode.

The plan lane (:mod:`repro.sim.plan`) removes generator dispatch from
the Section 4 prime/probe hot loop, but each op still costs one Python
heap round-trip whenever trojan and spy warps interleave — which, in a
contention channel, is all the time.  This module compiles the exact
plan-interpreter semantics (binary heap with FIFO-among-equals order,
pipelined-port acquire, LRU set update, cycle-skip deferral, event
budget) to C once per process via the system compiler, and runs whole
*stretches* of plan-only simulation in a single call.

Bit-identity is preserved by construction:

* Event times never depend on observed clock values, so clock jitter
  draws are deferred — C logs each read's raw completion time and
  Python applies ``rng.normal`` to the whole log in one vectorized
  call afterwards (stream-identical to per-read scalar draws).
* Non-plan heap entries (stream submit closures, host-wait arms,
  generator warps) are marshalled as opaque *sentinels*: the C loop
  stops the moment one reaches the heap head, Python executes it
  normally, and the next stretch resumes.  The inline deferral
  condition therefore sees exactly the heap the reference engines see.
* Kernel/block completions are logged and replayed in Python in event
  order (completion callbacks, block retirement, scheduler dispatch),
  and the C loop exits *at* any completion that has registered
  callbacks, so callback-scheduled events interleave exactly as under
  ``fast``/``events``/``tick``.

The marshaller keeps persistent per-device buffers and touches only
the cache sets the resident plans can reach (precomputed per plan), so
per-stretch Python overhead is proportional to the handful of active
warps, not to device size.

Everything degrades gracefully: no compiler, an unwritable cache dir,
or ``REPRO_BATCH_NATIVE=0`` fall back to the pure-Python plan lane
(same results, less speed).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Any, List, Optional

import numpy as np

from repro.sim.plan import PlanWarpRec
from repro.sim.timing import ClockModel

#: Stretch exit codes (mirrored in the C source).
EXIT_HEAP_EMPTY = 0
EXIT_HAZARD = 1
EXIT_BUDGET = 2
EXIT_LOG_OVERFLOW = 3
EXIT_FOREIGN_DUE = 5

_C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>

typedef struct {
    /* engine */
    double now;
    int64_t seq;
    int64_t event_count;
    int64_t max_events;          /* < 0: unlimited */
    double horizon;
    /* geometry / latencies (shared by every involved SM) */
    int32_t l1_sets, l1_ways, l2_sets, l2_ways;
    double l1_pc, l1_hl, l2_pc, l2_hl, mem_lat, clock_cost;
    /* L1 state, one slot per SM:
       tags[(slot*l1_sets + set)*l1_ways + way], LRU-first */
    int64_t *l1_tags;
    int32_t *l1_len;             /* [slot*l1_sets + set] */
    int64_t *l1_set_miss;        /* [slot*l1_sets + set] */
    int64_t *l1_hits;            /* [slot] */
    int64_t *l1_miss;            /* [slot] */
    double  *l1p_free;           /* [slot] */
    double  *l1p_busy;
    int64_t *l1p_req;
    /* L2 (device-wide) */
    int64_t *l2_tags;
    int32_t *l2_len;
    int64_t *l2_set_miss;
    int64_t l2_hits, l2_miss;
    double l2p_free, l2p_busy;
    int64_t l2p_req;
    /* issue ports, [sm * n_schedulers + scheduler] */
    double  *isp_free;
    double  *isp_busy;
    int64_t *isp_req;
    double  *isp_interval;
    /* plan arena */
    const int32_t *op_code;
    const int64_t *op_s1;
    const int64_t *op_t1;
    const int64_t *op_s2;
    const int64_t *op_t2;
    const double  *op_f;
    /* warp recs */
    int32_t n_recs;
    int32_t *rec_pc;
    const int32_t *rec_off;
    const int32_t *rec_len;
    const int32_t *rec_sm;
    const int32_t *rec_iport;
    const int32_t *rec_block;
    const uint8_t *rec_cancel;
    int32_t *rec_a;              /* clock-log idx of last CLOCK0; -1: python latch */
    int32_t *rec_b;
    uint8_t *rec_done;
    /* blocks / kernels */
    int32_t *block_wr;           /* warps remaining */
    const int32_t *block_kernel;
    int32_t *kernel_left;        /* blocks not yet complete */
    const uint8_t *kernel_hazard;
    /* heap: (time, seq, rec); rec < 0 marks a foreign sentinel */
    int32_t heap_n;
    double  *heap_t;
    int64_t *heap_s;
    int32_t *heap_r;
    /* logs */
    int32_t clock_n, clock_cap;
    double  *clock_raw;
    int32_t emit_n, emit_cap;
    int32_t *emit_rec;
    int32_t *emit_a;
    int32_t *emit_b;
    double  *emit_den;
    int32_t comp_n;              /* capacity == number of blocks */
    int32_t *comp_block;
    double  *comp_t;
} Stretch;

static void heap_push(Stretch *st, double t, int64_t s, int32_t r) {
    int i = st->heap_n++;
    while (i > 0) {
        int p = (i - 1) >> 1;
        double tp = st->heap_t[p];
        if (tp < t || (tp == t && st->heap_s[p] < s)) break;
        st->heap_t[i] = tp;
        st->heap_s[i] = st->heap_s[p];
        st->heap_r[i] = st->heap_r[p];
        i = p;
    }
    st->heap_t[i] = t;
    st->heap_s[i] = s;
    st->heap_r[i] = r;
}

static int32_t heap_pop(Stretch *st, double *t_out) {
    double t_top = st->heap_t[0];
    int32_t r_top = st->heap_r[0];
    int n = --st->heap_n;
    if (n > 0) {
        double t = st->heap_t[n];
        int64_t s = st->heap_s[n];
        int32_t r = st->heap_r[n];
        int i = 0;
        for (;;) {
            int c = 2 * i + 1;
            if (c >= n) break;
            int g = c + 1;
            if (g < n && (st->heap_t[g] < st->heap_t[c] ||
                          (st->heap_t[g] == st->heap_t[c] &&
                           st->heap_s[g] < st->heap_s[c])))
                c = g;
            if (t < st->heap_t[c] ||
                (t == st->heap_t[c] && s < st->heap_s[c]))
                break;
            st->heap_t[i] = st->heap_t[c];
            st->heap_s[i] = st->heap_s[c];
            st->heap_r[i] = st->heap_r[c];
            i = c;
        }
        st->heap_t[i] = t;
        st->heap_s[i] = s;
        st->heap_r[i] = r;
    }
    *t_out = t_top;
    return r_top;
}

/* LRU access to one set; returns 1 on hit. */
static int lru_access(int64_t *lines, int32_t *lenp, int ways, int64_t tag) {
    int len = *lenp;
    for (int w = 0; w < len; w++) {
        if (lines[w] == tag) {
            for (int v = w; v < len - 1; v++) lines[v] = lines[v + 1];
            lines[len - 1] = tag;
            return 1;
        }
    }
    if (len >= ways) {
        for (int v = 0; v < len - 1; v++) lines[v] = lines[v + 1];
        lines[len - 1] = tag;
    } else {
        lines[len] = tag;
        *lenp = len + 1;
    }
    return 0;
}

int run_stretch(Stretch *st) {
    while (st->heap_n > 0) {
        if (st->heap_r[0] < 0) return 5;   /* foreign event due */
        double t;
        int32_t r = heap_pop(st, &t);
        st->now = t;
        st->event_count++;
        if (st->max_events >= 0 && st->event_count > st->max_events)
            return 2;
        if (st->rec_cancel[r]) continue;
        double now = t;
        int32_t pc = st->rec_pc[r];
        const int32_t n_ops = st->rec_len[r];
        const int32_t off = st->rec_off[r];
        const int32_t slot = st->rec_sm[r];
        int64_t *l1_base = st->l1_tags +
            (size_t)slot * st->l1_sets * st->l1_ways;
        int32_t *l1_lens = st->l1_len + (size_t)slot * st->l1_sets;
        int64_t *l1_sm = st->l1_set_miss + (size_t)slot * st->l1_sets;
        for (;;) {
            if (pc == n_ops) {
                st->rec_pc[r] = pc;
                st->rec_done[r] = 1;
                int32_t b = st->rec_block[r];
                if (--st->block_wr[b] == 0) {
                    st->comp_block[st->comp_n] = b;
                    st->comp_t[st->comp_n] = now;
                    st->comp_n++;
                    int32_t k = st->block_kernel[b];
                    if (--st->kernel_left[k] == 0 && st->kernel_hazard[k])
                        return 1;
                }
                break;
            }
            const int32_t op = off + pc;
            pc++;
            const int32_t code = st->op_code[op];
            double finish;
            if (code == 0) {                      /* LOAD */
                double free = st->l1p_free[slot];
                double start1 = now > free ? now : free;
                st->l1p_free[slot] = start1 + st->l1_pc;
                st->l1p_busy[slot] += st->l1_pc;
                st->l1p_req[slot]++;
                int32_t set1 = (int32_t)st->op_s1[op];
                if (lru_access(l1_base + (size_t)set1 * st->l1_ways,
                               l1_lens + set1,
                               st->l1_ways, st->op_t1[op])) {
                    st->l1_hits[slot]++;
                    finish = start1 + st->l1_hl;
                } else {
                    st->l1_miss[slot]++;
                    l1_sm[set1]++;
                    free = st->l2p_free;
                    double start2 = start1 > free ? start1 : free;
                    st->l2p_free = start2 + st->l2_pc;
                    st->l2p_busy += st->l2_pc;
                    st->l2p_req++;
                    int32_t set2 = (int32_t)st->op_s2[op];
                    if (lru_access(st->l2_tags + (size_t)set2 * st->l2_ways,
                                   st->l2_len + set2,
                                   st->l2_ways, st->op_t2[op])) {
                        st->l2_hits++;
                        finish = start2 + st->l2_hl;
                    } else {
                        st->l2_miss++;
                        st->l2_set_miss[set2]++;
                        finish = start2 + st->mem_lat;
                    }
                }
            } else if (code == 1 || code == 2) {  /* CLOCK0 / CLOCK1 */
                const int32_t ip = st->rec_iport[r];
                const double interval = st->isp_interval[ip];
                double free = st->isp_free[ip];
                double start = now > free ? now : free;
                st->isp_free[ip] = start + interval;
                st->isp_busy[ip] += interval;
                st->isp_req[ip]++;
                finish = start + interval;
                double floor_ = now + st->clock_cost;
                if (floor_ > finish) finish = floor_;
                if (st->clock_n >= st->clock_cap) return 3;
                st->clock_raw[st->clock_n] = finish;
                if (code == 1) st->rec_a[r] = st->clock_n;
                else st->rec_b[r] = st->clock_n;
                st->clock_n++;
            } else if (code == 3) {               /* SLEEP */
                finish = now + st->op_f[op];
            } else {                              /* EMIT: host-side */
                if (st->emit_n >= st->emit_cap) return 3;
                st->emit_rec[st->emit_n] = r;
                st->emit_a[st->emit_n] = st->rec_a[r];
                st->emit_b[st->emit_n] = st->rec_b[r];
                st->emit_den[st->emit_n] = st->op_f[op];
                st->emit_n++;
                continue;
            }
            if ((st->heap_n > 0 && st->heap_t[0] <= finish)
                    || finish > st->horizon) {
                st->rec_pc[r] = pc;
                heap_push(st, finish, st->seq++, r);
                break;
            }
            now = finish;
            st->now = finish;
            st->event_count++;
            if (st->max_events >= 0 && st->event_count > st->max_events) {
                st->rec_pc[r] = pc;
                return 2;
            }
        }
    }
    return 0;
}
"""

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_i64_p = ctypes.POINTER(ctypes.c_int64)
_c_i32_p = ctypes.POINTER(ctypes.c_int32)
_c_u8_p = ctypes.POINTER(ctypes.c_uint8)


class _Stretch(ctypes.Structure):
    """ctypes mirror of the C ``Stretch`` struct (field order matters)."""

    _fields_ = [
        ("now", ctypes.c_double),
        ("seq", ctypes.c_int64),
        ("event_count", ctypes.c_int64),
        ("max_events", ctypes.c_int64),
        ("horizon", ctypes.c_double),
        ("l1_sets", ctypes.c_int32),
        ("l1_ways", ctypes.c_int32),
        ("l2_sets", ctypes.c_int32),
        ("l2_ways", ctypes.c_int32),
        ("l1_pc", ctypes.c_double),
        ("l1_hl", ctypes.c_double),
        ("l2_pc", ctypes.c_double),
        ("l2_hl", ctypes.c_double),
        ("mem_lat", ctypes.c_double),
        ("clock_cost", ctypes.c_double),
        ("l1_tags", _c_i64_p),
        ("l1_len", _c_i32_p),
        ("l1_set_miss", _c_i64_p),
        ("l1_hits", _c_i64_p),
        ("l1_miss", _c_i64_p),
        ("l1p_free", _c_double_p),
        ("l1p_busy", _c_double_p),
        ("l1p_req", _c_i64_p),
        ("l2_tags", _c_i64_p),
        ("l2_len", _c_i32_p),
        ("l2_set_miss", _c_i64_p),
        ("l2_hits", ctypes.c_int64),
        ("l2_miss", ctypes.c_int64),
        ("l2p_free", ctypes.c_double),
        ("l2p_busy", ctypes.c_double),
        ("l2p_req", ctypes.c_int64),
        ("isp_free", _c_double_p),
        ("isp_busy", _c_double_p),
        ("isp_req", _c_i64_p),
        ("isp_interval", _c_double_p),
        ("op_code", _c_i32_p),
        ("op_s1", _c_i64_p),
        ("op_t1", _c_i64_p),
        ("op_s2", _c_i64_p),
        ("op_t2", _c_i64_p),
        ("op_f", _c_double_p),
        ("n_recs", ctypes.c_int32),
        ("rec_pc", _c_i32_p),
        ("rec_off", _c_i32_p),
        ("rec_len", _c_i32_p),
        ("rec_sm", _c_i32_p),
        ("rec_iport", _c_i32_p),
        ("rec_block", _c_i32_p),
        ("rec_cancel", _c_u8_p),
        ("rec_a", _c_i32_p),
        ("rec_b", _c_i32_p),
        ("rec_done", _c_u8_p),
        ("block_wr", _c_i32_p),
        ("block_kernel", _c_i32_p),
        ("kernel_left", _c_i32_p),
        ("kernel_hazard", _c_u8_p),
        ("heap_n", ctypes.c_int32),
        ("heap_t", _c_double_p),
        ("heap_s", _c_i64_p),
        ("heap_r", _c_i32_p),
        ("clock_n", ctypes.c_int32),
        ("clock_cap", ctypes.c_int32),
        ("clock_raw", _c_double_p),
        ("emit_n", ctypes.c_int32),
        ("emit_cap", ctypes.c_int32),
        ("emit_rec", _c_i32_p),
        ("emit_a", _c_i32_p),
        ("emit_b", _c_i32_p),
        ("emit_den", _c_double_p),
        ("comp_n", ctypes.c_int32),
        ("comp_block", _c_i32_p),
        ("comp_t", _c_double_p),
    ]


def _native_cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        base = Path(override)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = Path(xdg) if xdg else Path.home() / ".cache"
        base = base / "repro"
    return base / "native"


def _compile_library() -> Optional[ctypes.CDLL]:
    """Build (or reuse) the stretch-runner shared object; None on failure."""
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    for root in (_native_cache_dir(),
                 Path(tempfile.gettempdir()) / "repro-native"):
        so_path = root / f"stretch-{digest}.so"
        try:
            if not so_path.exists():
                root.mkdir(parents=True, exist_ok=True)
                src = root / f"stretch-{digest}.c"
                src.write_text(_C_SOURCE)
                compilers = [os.environ.get("CC"), "cc", "gcc", "clang"]
                built = False
                for cc in compilers:
                    if not cc:
                        continue
                    tmp = root / f".stretch-{digest}.{os.getpid()}.so"
                    try:
                        subprocess.run(
                            [cc, "-O2", "-shared", "-fPIC",
                             "-o", str(tmp), str(src)],
                            check=True, capture_output=True, timeout=120)
                    except (OSError, subprocess.SubprocessError):
                        continue
                    os.replace(tmp, so_path)  # atomic for racing processes
                    built = True
                    break
                if not built:
                    continue
            lib = ctypes.CDLL(str(so_path))
            lib.run_stretch.argtypes = [ctypes.POINTER(_Stretch)]
            lib.run_stretch.restype = ctypes.c_int
            return lib
        except OSError:
            continue
    return None


_LIB: Any = None
_LIB_TRIED = False


def native_library() -> Optional[ctypes.CDLL]:
    """Process-wide compiled stretch runner (None when unavailable).

    ``REPRO_BATCH_NATIVE=0`` (or ``no``/``off``) disables compilation —
    the kill switch the equivalence tests use to prove the pure-Python
    plan lane and the compiled lane agree bit for bit.
    """
    global _LIB, _LIB_TRIED
    if os.environ.get("REPRO_BATCH_NATIVE", "1").lower() in ("0", "no",
                                                             "off"):
        return None
    if not _LIB_TRIED:
        _LIB_TRIED = True
        _LIB = _compile_library()
    return _LIB


def _ptr(arr: np.ndarray, ctype) -> Any:
    return arr.ctypes.data_as(ctype)


class NativeStretchRunner:
    """Marshals one device's plan-lane state through ``run_stretch``.

    One instance per :class:`~repro.sim.batch.BatchedEngine`.  Buffers
    are persistent: device-geometry arrays (cache tags, port timings)
    are allocated once at bind time, and per-stretch work touches only
    the cache sets the resident plans can reach — precomputed per plan
    — so the Python marshalling cost scales with active warps, not
    device size.  The plan arena is accumulated across stretches since
    plans are module-memoized.
    """

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self._st = _Stretch()
        self._device: Any = None
        # plan arena
        self._arena_offsets: dict = {}
        self._arena_plans: list = []
        self._arena_size = 0
        self._arena: dict = {}
        #: id(plan) -> (sorted L1 set list, sorted L2 set list) a plan
        #: can touch (strong plan refs held via _arena_plans).
        self._plan_touched: dict = {}
        self._rec_cap = 0
        self._heap_cap = 0
        self._log_cap = 0
        self._blk_cap = 0

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def _bind(self, device: Any) -> None:
        st = self._st
        self._device = device
        spec = device.spec
        l1s, l2s = spec.const_l1, spec.const_l2
        n = spec.n_sms
        self._n_sched = spec.warp_schedulers
        self._l1_sets_n, self._l1_ways = l1s.n_sets, l1s.ways
        self._l2_sets_n, self._l2_ways = l2s.n_sets, l2s.ways
        st.l1_sets, st.l1_ways = l1s.n_sets, l1s.ways
        st.l2_sets, st.l2_ways = l2s.n_sets, l2s.ways
        st.l1_pc, st.l1_hl = l1s.port_cycles, l1s.hit_latency
        st.l2_pc, st.l2_hl = l2s.port_cycles, l2s.hit_latency
        st.mem_lat = spec.const_mem_latency
        st.clock_cost = 2.0  # repro.sim.sm.CLOCK_READ_COST
        me = device.engine._max_events
        st.max_events = -1 if me is None else me
        self._l1_tags = np.zeros((n, l1s.n_sets, l1s.ways), np.int64)
        self._l1_len = np.zeros((n, l1s.n_sets), np.int32)
        self._l1_set_miss = np.zeros((n, l1s.n_sets), np.int64)
        self._l1_hits = np.zeros(n, np.int64)
        self._l1_miss = np.zeros(n, np.int64)
        self._l1p_free = np.zeros(n, np.float64)
        self._l1p_busy = np.zeros(n, np.float64)
        self._l1p_req = np.zeros(n, np.int64)
        self._l2_tags = np.zeros((l2s.n_sets, l2s.ways), np.int64)
        self._l2_len = np.zeros(l2s.n_sets, np.int32)
        self._l2_set_miss = np.zeros(l2s.n_sets, np.int64)
        ni = n * self._n_sched
        self._isp_free = np.zeros(ni, np.float64)
        self._isp_busy = np.zeros(ni, np.float64)
        self._isp_req = np.zeros(ni, np.int64)
        self._isp_interval = np.zeros(ni, np.float64)
        st.l1_tags = _ptr(self._l1_tags, _c_i64_p)
        st.l1_len = _ptr(self._l1_len, _c_i32_p)
        st.l1_set_miss = _ptr(self._l1_set_miss, _c_i64_p)
        st.l1_hits = _ptr(self._l1_hits, _c_i64_p)
        st.l1_miss = _ptr(self._l1_miss, _c_i64_p)
        st.l1p_free = _ptr(self._l1p_free, _c_double_p)
        st.l1p_busy = _ptr(self._l1p_busy, _c_double_p)
        st.l1p_req = _ptr(self._l1p_req, _c_i64_p)
        st.l2_tags = _ptr(self._l2_tags, _c_i64_p)
        st.l2_len = _ptr(self._l2_len, _c_i32_p)
        st.l2_set_miss = _ptr(self._l2_set_miss, _c_i64_p)
        st.isp_free = _ptr(self._isp_free, _c_double_p)
        st.isp_busy = _ptr(self._isp_busy, _c_double_p)
        st.isp_req = _ptr(self._isp_req, _c_i64_p)
        st.isp_interval = _ptr(self._isp_interval, _c_double_p)

    def _ensure_recs(self, n: int) -> None:
        if n <= self._rec_cap:
            return
        cap = self._rec_cap = max(64, 2 * n)
        st = self._st
        self._rec_pc = np.zeros(cap, np.int32)
        self._rec_off = np.zeros(cap, np.int32)
        self._rec_len = np.zeros(cap, np.int32)
        self._rec_sm = np.zeros(cap, np.int32)
        self._rec_iport = np.zeros(cap, np.int32)
        self._rec_block = np.zeros(cap, np.int32)
        self._rec_cancel = np.zeros(cap, np.uint8)
        self._rec_a = np.zeros(cap, np.int32)
        self._rec_b = np.zeros(cap, np.int32)
        self._rec_done = np.zeros(cap, np.uint8)
        st.rec_pc = _ptr(self._rec_pc, _c_i32_p)
        st.rec_off = _ptr(self._rec_off, _c_i32_p)
        st.rec_len = _ptr(self._rec_len, _c_i32_p)
        st.rec_sm = _ptr(self._rec_sm, _c_i32_p)
        st.rec_iport = _ptr(self._rec_iport, _c_i32_p)
        st.rec_block = _ptr(self._rec_block, _c_i32_p)
        st.rec_cancel = _ptr(self._rec_cancel, _c_u8_p)
        st.rec_a = _ptr(self._rec_a, _c_i32_p)
        st.rec_b = _ptr(self._rec_b, _c_i32_p)
        st.rec_done = _ptr(self._rec_done, _c_u8_p)

    def _ensure_heap(self, n: int) -> None:
        if n <= self._heap_cap:
            return
        cap = self._heap_cap = max(128, 2 * n)
        st = self._st
        self._heap_t = np.zeros(cap, np.float64)
        self._heap_s = np.zeros(cap, np.int64)
        self._heap_r = np.zeros(cap, np.int32)
        st.heap_t = _ptr(self._heap_t, _c_double_p)
        st.heap_s = _ptr(self._heap_s, _c_i64_p)
        st.heap_r = _ptr(self._heap_r, _c_i32_p)

    def _ensure_logs(self, n: int) -> None:
        if n <= self._log_cap:
            return
        cap = self._log_cap = max(4096, 2 * n)
        st = self._st
        self._clock_raw = np.zeros(cap, np.float64)
        self._emit_rec = np.zeros(cap, np.int32)
        self._emit_a = np.zeros(cap, np.int32)
        self._emit_b = np.zeros(cap, np.int32)
        self._emit_den = np.zeros(cap, np.float64)
        st.clock_raw = _ptr(self._clock_raw, _c_double_p)
        st.emit_rec = _ptr(self._emit_rec, _c_i32_p)
        st.emit_a = _ptr(self._emit_a, _c_i32_p)
        st.emit_b = _ptr(self._emit_b, _c_i32_p)
        st.emit_den = _ptr(self._emit_den, _c_double_p)
        st.clock_cap = cap
        st.emit_cap = cap

    def _ensure_blocks(self, n: int) -> None:
        if n <= self._blk_cap:
            return
        cap = self._blk_cap = max(64, 2 * n)
        st = self._st
        self._block_wr = np.zeros(cap, np.int32)
        self._block_kernel = np.zeros(cap, np.int32)
        self._kernel_left = np.zeros(cap, np.int32)
        self._kernel_hazard = np.zeros(cap, np.uint8)
        self._comp_block = np.zeros(cap, np.int32)
        self._comp_t = np.zeros(cap, np.float64)
        st.block_wr = _ptr(self._block_wr, _c_i32_p)
        st.block_kernel = _ptr(self._block_kernel, _c_i32_p)
        st.kernel_left = _ptr(self._kernel_left, _c_i32_p)
        st.kernel_hazard = _ptr(self._kernel_hazard, _c_u8_p)
        st.comp_block = _ptr(self._comp_block, _c_i32_p)
        st.comp_t = _ptr(self._comp_t, _c_double_p)

    # ------------------------------------------------------------------
    # Plan arena
    # ------------------------------------------------------------------
    def _register_plan(self, plan: Any) -> int:
        off = self._arena_size
        self._arena_offsets[id(plan)] = off
        self._arena_plans.append(plan)
        self._arena_size += plan.n_ops
        load = plan.code == 0
        self._plan_touched[id(plan)] = (
            np.unique(plan.s1[load]).tolist(),
            np.unique(plan.s2[load]).tolist(),
        )
        return off

    def _rebuild_arena(self) -> None:
        ps = self._arena_plans
        st = self._st
        arena = self._arena = {
            "code": np.concatenate([p.code for p in ps]),
            "s1": np.concatenate([p.s1 for p in ps]),
            "t1": np.concatenate([p.t1 for p in ps]),
            "s2": np.concatenate([p.s2 for p in ps]),
            "t2": np.concatenate([p.t2 for p in ps]),
            "f": np.concatenate([p.f for p in ps]),
        }
        st.op_code = _ptr(arena["code"], _c_i32_p)
        st.op_s1 = _ptr(arena["s1"], _c_i64_p)
        st.op_t1 = _ptr(arena["t1"], _c_i64_p)
        st.op_s2 = _ptr(arena["s2"], _c_i64_p)
        st.op_t2 = _ptr(arena["t2"], _c_i64_p)
        st.op_f = _ptr(arena["f"], _c_double_p)

    # ------------------------------------------------------------------
    def eligible(self, engine: Any) -> bool:
        """Cheap per-stretch preconditions beyond "heap head is a rec"."""
        device = engine._device
        return (device is not None
                and type(device.clock) is ClockModel
                and engine.profile_hook is None
                and not device.block_scheduler.has_pending
                and device.plan_lane_active())

    # ------------------------------------------------------------------
    def run(self, engine: Any) -> int:
        """Execute one native stretch; returns the C exit code.

        Marshals engine/cache/port/plan state into the persistent
        arrays, runs ``run_stretch``, then pours everything back:
        touched cache sets and counters, port timings, clock-jitter
        resolution (one vectorized draw over the log — stream-identical
        to per-read scalars), emit lists, the rebuilt heap, and block
        completions replayed in logged event order with ``engine.now``
        temporarily rewound so ``BlockRecord.stop_cycle`` and
        completion callbacks observe exact times.  The heap is rebuilt
        *before* the completion replay: callbacks may schedule events.
        """
        device = engine._device
        if device is not self._device:
            self._bind(device)
        st = self._st
        heap = engine._heap
        sms = device.sms

        # --- heap marshal ------------------------------------------------
        # Accumulate in Python lists, then bulk-assign slices: one numpy
        # call per column beats per-element ndarray stores by ~50x.
        hn = len(heap)
        self._ensure_heap(hn + 4)
        ht: list = []
        hs: list = []
        hr: list = []
        recs: List[PlanWarpRec] = []
        foreign: List[Any] = []
        for t, s, fn in heap:
            ht.append(t)
            hs.append(s)
            if type(fn) is PlanWarpRec:
                hr.append(len(recs))
                recs.append(fn)
            else:
                hr.append(-1 - len(foreign))
                foreign.append(fn)
        self._heap_t[:hn] = ht
        self._heap_s[:hn] = hs
        self._heap_r[:hn] = hr
        n_recs = len(recs)
        self._ensure_recs(n_recs)

        # --- rec registries ----------------------------------------------
        rec_a, rec_b, rec_done = self._rec_a, self._rec_b, self._rec_done
        rec_a[:n_recs] = -1
        rec_b[:n_recs] = -1
        rec_done[:n_recs] = 0
        arena_off = self._arena_offsets
        touched = self._plan_touched
        n_sched = self._n_sched
        arena_dirty = False
        remaining_ops = 0
        r_pc: list = []
        r_off: list = []
        r_len: list = []
        r_sm: list = []
        r_iport: list = []
        r_block: list = []
        r_cancel: list = []
        sm_ids: set = set()
        l1_touched: set = set()
        l2_touched: set = set()
        iports: dict = {}
        block_ix: dict = {}
        blocks: list = []
        kernel_ix: dict = {}
        kernels: list = []
        for rec in recs:
            pc = rec.pc
            r_pc.append(pc)
            r_len.append(rec.n_ops)
            remaining_ops += rec.n_ops - pc
            plan = rec.plan
            off = arena_off.get(id(plan))
            if off is None:
                off = self._register_plan(plan)
                arena_dirty = True
            r_off.append(off)
            sm_id = rec.sm.sm_id
            r_sm.append(sm_id)
            sm_ids.add(sm_id)
            t1, t2 = touched[id(plan)]
            for si in t1:
                l1_touched.add((sm_id, si))
            l2_touched.update(t2)
            gi = sm_id * n_sched + rec.warp.scheduler_id
            r_iport.append(gi)
            if gi not in iports:
                iports[gi] = (rec.issue_port, rec.issue_interval)
            bid = id(rec.block)
            b = block_ix.get(bid)
            if b is None:
                b = block_ix[bid] = len(blocks)
                blocks.append((rec.block, rec.sm))
                kernel = rec.block.kernel
                kid = id(kernel)
                if kid not in kernel_ix:
                    kernel_ix[kid] = len(kernels)
                    kernels.append(kernel)
            r_block.append(b)
            r_cancel.append(1 if rec.warp.cancelled else 0)
        self._rec_pc[:n_recs] = r_pc
        self._rec_off[:n_recs] = r_off
        self._rec_len[:n_recs] = r_len
        self._rec_sm[:n_recs] = r_sm
        self._rec_iport[:n_recs] = r_iport
        self._rec_block[:n_recs] = r_block
        self._rec_cancel[:n_recs] = r_cancel
        if arena_dirty:
            self._rebuild_arena()
        self._ensure_logs(remaining_ops + 1)
        self._ensure_blocks(len(blocks))
        nb = len(blocks)
        self._block_wr[:nb] = [block.warps_remaining
                               for block, _sm in blocks]
        self._block_kernel[:nb] = [kernel_ix[id(block.kernel)]
                                   for block, _sm in blocks]
        nk = len(kernels)
        self._kernel_left[:nk] = [k.config.grid - k._blocks_done
                                  for k in kernels]
        self._kernel_hazard[:nk] = [1 if k._on_complete else 0
                                    for k in kernels]

        # --- cache / port marshal (touched entries only) ------------------
        l1_tags, l1_len = self._l1_tags, self._l1_len
        l1_set_miss = self._l1_set_miss
        for sm_id in sm_ids:
            l1 = sms[sm_id].l1
            self._l1_hits[sm_id] = int(l1.hit_counter.value)
            self._l1_miss[sm_id] = int(l1.miss_counter.value)
            port = l1.port
            self._l1p_free[sm_id] = port.free_at
            self._l1p_busy[sm_id] = port.busy_cycles
            self._l1p_req[sm_id] = port.requests
        for sm_id, si in l1_touched:
            l1 = sms[sm_id].l1
            lines = l1._sets[si]
            ln = len(lines)
            l1_len[sm_id, si] = ln
            if ln:
                l1_tags[sm_id, si, :ln] = lines
            l1_set_miss[sm_id, si] = l1.set_misses[si]
        l2 = device.const_l2
        l2_tags, l2_len = self._l2_tags, self._l2_len
        l2_set_miss = self._l2_set_miss
        l2_sets = l2._sets
        l2_sm = l2.set_misses
        for si in l2_touched:
            lines = l2_sets[si]
            ln = len(lines)
            l2_len[si] = ln
            if ln:
                l2_tags[si, :ln] = lines
            l2_set_miss[si] = l2_sm[si]
        st.l2_hits = int(l2.hit_counter.value)
        st.l2_miss = int(l2.miss_counter.value)
        st.l2p_free = l2.port.free_at
        st.l2p_busy = l2.port.busy_cycles
        st.l2p_req = l2.port.requests
        isp_free, isp_busy = self._isp_free, self._isp_busy
        isp_req, isp_interval = self._isp_req, self._isp_interval
        for gi, (port, interval) in iports.items():
            isp_free[gi] = port.free_at
            isp_busy[gi] = port.busy_cycles
            isp_req[gi] = port.requests
            isp_interval[gi] = interval

        # --- engine scalars ----------------------------------------------
        st.now = engine.now
        st.seq = engine._seq
        st.event_count = engine._event_count
        st.horizon = engine._horizon
        st.n_recs = n_recs
        st.heap_n = hn
        st.clock_n = 0
        st.emit_n = 0
        st.comp_n = 0

        code = self._lib.run_stretch(ctypes.byref(st))

        # --- pour back: engine -------------------------------------------
        engine._seq = int(st.seq)
        engine._event_count = int(st.event_count)
        final_now = float(st.now)
        engine.now = final_now

        # caches + ports (touched entries only; in-place list updates
        # keep the aliases live PlanWarpRecs hold)
        for sm_id in sm_ids:
            l1 = sms[sm_id].l1
            # Counter.value is a float; restore as float so snapshot
            # fingerprints (canonical JSON) match the reference engines.
            l1.hit_counter.value = float(self._l1_hits[sm_id])
            l1.miss_counter.value = float(self._l1_miss[sm_id])
            port = l1.port
            port.free_at = float(self._l1p_free[sm_id])
            port.busy_cycles = float(self._l1p_busy[sm_id])
            port.requests = int(self._l1p_req[sm_id])
        for sm_id, si in l1_touched:
            l1 = sms[sm_id].l1
            ln = l1_len[sm_id, si]
            l1._sets[si][:] = l1_tags[sm_id, si, :ln].tolist()
            l1.set_misses[si] = int(l1_set_miss[sm_id, si])
        for si in l2_touched:
            ln = l2_len[si]
            l2_sets[si][:] = l2_tags[si, :ln].tolist()
            l2_sm[si] = int(l2_set_miss[si])
        l2.hit_counter.value = float(st.l2_hits)
        l2.miss_counter.value = float(st.l2_miss)
        l2.port.free_at = float(st.l2p_free)
        l2.port.busy_cycles = float(st.l2p_busy)
        l2.port.requests = int(st.l2p_req)
        for gi, (port, _interval) in iports.items():
            port.free_at = float(isp_free[gi])
            port.busy_cycles = float(isp_busy[gi])
            port.requests = int(isp_req[gi])

        # clock jitter resolution (one bulk draw == per-read scalar draws)
        cn = int(st.clock_n)
        clock = device.clock
        if cn:
            arr = self._clock_raw[:cn]
            if clock.jitter_cycles > 0.0:
                arr = arr + clock._rng.normal(0.0, clock.jitter_cycles,
                                              size=cn)
            if clock.granularity != 1.0:
                g = clock.granularity
                arr = (arr // g) * g
            vals = arr.tolist()
        else:
            vals = []

        # emits, in execution order
        en = int(st.emit_n)
        if en:
            emit_rec = self._emit_rec[:en].tolist()
            emit_a = self._emit_a[:en].tolist()
            emit_b = self._emit_b[:en].tolist()
            emit_den = self._emit_den[:en].tolist()
            for i in range(en):
                rec = recs[emit_rec[i]]
                a = emit_a[i]
                b = emit_b[i]
                t0 = vals[a] if a >= 0 else rec.t0
                t1 = vals[b] if b >= 0 else rec.t1
                rec.lats.append((t1 - t0) / emit_den[i])

        # per-rec state
        pcs = self._rec_pc[:n_recs].tolist()
        avs = rec_a[:n_recs].tolist()
        bvs = rec_b[:n_recs].tolist()
        dones = rec_done[:n_recs].tolist()
        for i, rec in enumerate(recs):
            rec.pc = pcs[i]
            a = avs[i]
            if a >= 0:
                rec.t0 = vals[a]
            b = bvs[i]
            if b >= 0:
                rec.t1 = vals[b]
            # finished warps: result write-back + warp accounting
            if dones[i]:
                warp = rec.warp
                if rec.out_write is not None:
                    rec.out_write(warp.kernel.out, warp.block_idx, rec.lats)
                warp.done = True
                rec.block.warp_finished()

        # heap rebuild, BEFORE completion replay: completion callbacks
        # may schedule new events and must land in the live heap.  The
        # C array is a valid binary heap ((time, seq) keys are unique,
        # so its pop order is identical to heapq's even if the array
        # layout differs).
        out_n = int(st.heap_n)
        ht = self._heap_t[:out_n].tolist()
        hs = self._heap_s[:out_n].tolist()
        hr = self._heap_r[:out_n].tolist()
        heap[:] = [
            (ht[i], hs[i],
             recs[hr[i]] if hr[i] >= 0 else foreign[-1 - hr[i]])
            for i in range(out_n)
        ]

        # block completions, replayed in logged event order so
        # stop_cycle / complete_cycle / callbacks see exact times
        compn = int(st.comp_n)
        if compn:
            comp_block = self._comp_block[:compn].tolist()
            comp_t = self._comp_t[:compn].tolist()
            for i in range(compn):
                block, sm = blocks[comp_block[i]]
                engine.now = comp_t[i]
                sm._retire_block(block)
            engine.now = final_now

        return code
