"""Multi-GPU fabric: N devices joined by bounded bidirectional links.

The paper's channels live inside one die; its follow-ons (NVBleed,
"Beyond the Bridge" — see PAPERS.md) move the same contention
primitives onto the *interconnect*: NVLink/PCIe link bandwidth, remote
atomics, memory reachable across devices.  This module provides the
substrate for that family:

* :class:`Fabric` — N :class:`~repro.sim.gpu.Device`\\ s driven by **one
  shared event engine**, joined all-pairs by :class:`Link`\\ s.
* :class:`Link` — a bounded bidirectional interconnect: one
  :class:`~repro.sim.resources.PipelinedPort` per direction (bandwidth
  contention, exactly the shape every other contended resource uses)
  plus a fixed traversal latency.
* Remote paths — :meth:`Fabric.remote_load` / :meth:`Fabric.remote_store`
  / :meth:`Fabric.remote_atomic` carry a warp's coalesced segments over
  the link, service them at the *remote* device's
  :class:`~repro.sim.memory.GlobalMemory`, and return over the link.
  Kernels reach them through the ``Remote*`` instructions in
  :mod:`repro.sim.isa`.

Determinism contract — the sync-period invariant
------------------------------------------------

Distributed simulators (SimBricks is the exemplar) couple component
simulators through latency-bounded channels and stay deterministic by
the *sync-period ≤ link-latency* invariant: a simulator may run ahead
of its peers by at most one sync period, and because every cross-device
message takes at least one link latency to arrive, no message can ever
arrive in a peer's past.  This fabric is the degenerate (and strongest)
form of that design: all devices share **one** event heap, so the
"sync period" is effectively zero and cross-device event ordering is
the engine's FIFO-among-equals heap order — bit-identical across the
``fast``/``events``/``tick`` engine modes.  The invariant is still
validated at construction (``sync_period <= link.latency``) because it
is the contract any future *distributed* engine must keep to preserve
these exact timings; see ``docs/fabric.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.specs import GPUSpec
from repro.seeds import FABRIC_DEVICE_STRIDE, derive_seed
from repro.sim.engine import Engine, TickEngine
from repro.sim.gpu import Device, resolve_engine_mode
from repro.sim.resources import PipelinedPort

__all__ = ["FabricError", "LinkSpec", "Link", "Fabric"]

#: Default shared event budget for a fabric (two devices' worth of the
#: single-device default).
DEFAULT_FABRIC_MAX_EVENTS = 100_000_000


class FabricError(RuntimeError):
    """Invalid fabric construction or an invalid cross-device request."""


@dataclass(frozen=True)
class LinkSpec:
    """Parameters of one interconnect link (both directions alike).

    Defaults model a PCIe-3.0-x16-class interconnect at GPU core clock:
    ~12 GB/s per direction at ~750 MHz is 16 B/cycle, and a one-way
    traversal (serialization + switch + DMA setup) on the order of a
    microsecond is ~700 cycles.  ``flit_bytes`` is the size of a
    control message (a read request or a write/atomic acknowledgement);
    data always moves in whole coalescing segments.
    """

    latency: float = 700.0
    bytes_per_cycle: float = 16.0
    flit_bytes: int = 32

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError("link latency must be positive")
        if self.bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.flit_bytes <= 0:
            raise ValueError("flit_bytes must be positive")

    def occupancy(self, nbytes: float) -> float:
        """Cycles ``nbytes`` occupies one direction of the link."""
        return nbytes / self.bytes_per_cycle


class Link:
    """One bidirectional link between two devices.

    Each direction is an independent :class:`PipelinedPort` (named
    ``link{a}-{b}.fwd`` for a→b and ``link{a}-{b}.rev`` for b→a), so
    traffic in opposite directions never queues against itself — but
    two kernels pushing data the same way contend exactly like warps
    sharing an SFU dispatch port.  The attribution layer classifies
    these port names into the ``interconnect_link`` resource group.
    """

    __slots__ = ("spec", "endpoints", "ports")

    def __init__(self, spec: LinkSpec, a: int, b: int) -> None:
        if a == b:
            raise FabricError("a link needs two distinct endpoints")
        a, b = (a, b) if a < b else (b, a)
        self.spec = spec
        self.endpoints: Tuple[int, int] = (a, b)
        self.ports: Dict[Tuple[int, int], PipelinedPort] = {
            (a, b): PipelinedPort(name=f"link{a}-{b}.fwd"),
            (b, a): PipelinedPort(name=f"link{a}-{b}.rev"),
        }

    def traverse(self, src: int, dst: int, now: float, nbytes: float,
                 context: Optional[int] = None) -> float:
        """Send ``nbytes`` from ``src`` to ``dst``; returns arrival time.

        The payload first acquires the direction's port for its
        serialization time (queueing behind in-flight transfers — the
        contention the link-bandwidth channel modulates), then spends
        the fixed traversal latency in flight.
        """
        try:
            port = self.ports[(src, dst)]
        except KeyError:
            raise FabricError(
                f"link {self.endpoints} does not connect {src}->{dst}")
        occupancy = self.spec.occupancy(nbytes)
        start = port.acquire(now, occupancy, context)
        return start + occupancy + self.spec.latency

    def reset_stats(self) -> None:
        """Zero per-direction statistics; in-flight timing survives."""
        for port in self.ports.values():
            port.reset_stats()


class Fabric:
    """N simulated GPGPUs on one shared event engine, joined by links.

    >>> from repro.arch import KEPLER_K40C
    >>> from repro.sim.fabric import Fabric
    >>> fabric = Fabric(KEPLER_K40C, 2)
    >>> fabric.devices[0].fabric is fabric
    True
    >>> fabric.devices[0].engine is fabric.devices[1].engine
    True

    ``spec`` may be one :class:`GPUSpec` (replicated ``n_devices``
    times — the homogeneous DGX-style box) or a sequence of specs (a
    heterogeneous fabric).  Per-device seeds derive from ``seed`` via
    the frozen :data:`~repro.seeds.FABRIC_DEVICE_STRIDE` stream so a
    fabric's devices never share RNG streams with each other or with
    the transmitted message.
    """

    def __init__(self, spec: Union[GPUSpec, Sequence[GPUSpec]],
                 n_devices: Optional[int] = None, *,
                 seed: int = 0,
                 link: Optional[LinkSpec] = None,
                 sync_period: Optional[float] = None,
                 engine: Optional[str] = None,
                 max_events: Optional[int] = DEFAULT_FABRIC_MAX_EVENTS,
                 observe=None) -> None:
        if isinstance(spec, GPUSpec):
            specs = [spec] * (2 if n_devices is None else n_devices)
        else:
            specs = list(spec)
            if n_devices is not None and n_devices != len(specs):
                raise FabricError(
                    f"n_devices={n_devices} contradicts the "
                    f"{len(specs)} specs given")
        if len(specs) < 2:
            raise FabricError("a fabric needs at least 2 devices")
        self.link_spec = link if link is not None else LinkSpec()
        if sync_period is None:
            sync_period = self.link_spec.latency
        if not 0 < sync_period <= self.link_spec.latency:
            raise FabricError(
                f"sync_period ({sync_period}) must be in "
                f"(0, link latency ({self.link_spec.latency})]: a device "
                "running further ahead than one link traversal could "
                "receive a remote request in its simulated past, making "
                "cross-device event order engine-dependent")
        self.sync_period = sync_period
        self.seed = seed
        self.engine_mode = resolve_engine_mode(engine)
        if self.engine_mode == "batched":
            raise FabricError(
                "engine mode 'batched' is single-device only: a fabric "
                "shares one event engine across members, while the "
                "batched engine's stretch runner assumes it owns the "
                "whole heap.  Build the fabric with engine='fast' and "
                "use repro.sim.batch.ReplicaBatch for replica fleets "
                "of standalone devices.")
        engine_cls = TickEngine if self.engine_mode == "tick" else Engine
        #: The one shared engine every member device schedules on.
        self.engine = engine_cls(max_events=max_events)
        self.devices: List[Device] = [
            Device(dev_spec,
                   seed=derive_seed(seed, FABRIC_DEVICE_STRIDE, i),
                   max_events=max_events,
                   observe=observe,
                   engine=self.engine_mode,
                   fabric=self,
                   device_id=i)
            for i, dev_spec in enumerate(specs)
        ]
        #: ``(i, j)`` with ``i < j`` -> the link joining devices i and j.
        self.links: Dict[Tuple[int, int], Link] = {
            (i, j): Link(self.link_spec, i, j)
            for i in range(len(specs))
            for j in range(i + 1, len(specs))
        }

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        """Number of member devices."""
        return len(self.devices)

    @property
    def now(self) -> float:
        """Current simulated cycle (shared by every member device)."""
        return self.engine.now

    def link(self, a: int, b: int) -> Link:
        """The link joining devices ``a`` and ``b``."""
        key = (a, b) if a < b else (b, a)
        try:
            return self.links[key]
        except KeyError:
            raise FabricError(f"no link between devices {a} and {b} "
                              f"(fabric has {self.n_devices} devices)")

    def _check_device(self, device_id: int) -> Device:
        if not 0 <= device_id < len(self.devices):
            raise FabricError(
                f"no device {device_id} in a {self.n_devices}-device "
                "fabric")
        return self.devices[device_id]

    # ------------------------------------------------------------------
    # Remote memory paths
    # ------------------------------------------------------------------
    def _segments(self, peer: Device, addrs: Sequence[int]) -> int:
        seg_bytes = peer.spec.memory.segment_bytes
        return len({a // seg_bytes for a in addrs})

    def remote_load(self, src: int, dst: int, now: float,
                    addrs: Sequence[int],
                    context: Optional[int] = None) -> float:
        """A warp on ``src`` loads from ``dst``'s global memory.

        Request flits travel src→dst, the access services at the remote
        :class:`~repro.sim.memory.GlobalMemory` (contending with the
        remote device's own traffic), and the data segments return
        dst→src.  Returns the completion time.
        """
        peer = self._check_device(dst)
        if src == dst:
            return peer.memory.warp_load(now, addrs, context)
        link = self.link(src, dst)
        nseg = self._segments(peer, addrs)
        arrive = link.traverse(src, dst, now,
                               nseg * self.link_spec.flit_bytes, context)
        served = peer.memory.warp_load(arrive, addrs, context)
        return link.traverse(dst, src, served,
                             nseg * peer.spec.memory.segment_bytes,
                             context)

    def remote_store(self, src: int, dst: int, now: float,
                     addrs: Sequence[int],
                     context: Optional[int] = None) -> float:
        """A warp on ``src`` stores to ``dst``'s global memory.

        Data segments travel src→dst, retire at the remote write queue,
        and a flit-sized acknowledgement returns (release semantics:
        the issuing warp observes remote completion, not fire-and-
        forget).
        """
        peer = self._check_device(dst)
        if src == dst:
            return peer.memory.warp_store(now, addrs, context)
        link = self.link(src, dst)
        nseg = self._segments(peer, addrs)
        arrive = link.traverse(src, dst, now,
                               nseg * peer.spec.memory.segment_bytes,
                               context)
        served = peer.memory.warp_store(arrive, addrs, context)
        return link.traverse(dst, src, served,
                             nseg * self.link_spec.flit_bytes, context)

    def remote_atomic(self, src: int, dst: int, now: float,
                      addrs: Sequence[int],
                      context: Optional[int] = None) -> float:
        """A warp on ``src`` atomically updates ``dst``'s global memory.

        Operand segments travel src→dst, serialize at the *remote*
        atomic units (the contention the remote-atomic channel
        modulates), and a flit-sized completion returns.
        """
        peer = self._check_device(dst)
        if src == dst:
            return peer.memory.warp_atomic(now, addrs, context)
        link = self.link(src, dst)
        nseg = self._segments(peer, addrs)
        arrive = link.traverse(src, dst, now,
                               nseg * peer.spec.memory.segment_bytes,
                               context)
        served = peer.memory.warp_atomic(arrive, addrs, context)
        return link.traverse(dst, src, served,
                             nseg * self.link_spec.flit_bytes, context)

    # ------------------------------------------------------------------
    # Host API
    # ------------------------------------------------------------------
    def synchronize(self, kernels=None) -> None:
        """Run the fabric until the given work (default: all) retires.

        With ``kernels`` (possibly spanning devices — the shared heap
        executes every device's events regardless of which member
        drains it) this waits for exactly those kernels; without, it
        drains every member device in turn.
        """
        if kernels is not None:
            self.devices[0].synchronize(kernels=kernels)
            return
        for device in self.devices:
            device.synchronize()

    def flush_caches(self) -> None:
        """Invalidate every member device's constant caches."""
        for device in self.devices:
            device.flush_caches()

    def reset_stats(self) -> None:
        """Zero every instrument on every device and every link."""
        for device in self.devices:
            device.reset_stats()
        for link in self.links.values():
            link.reset_stats()

    # ------------------------------------------------------------------
    # Snapshot / fork
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture the full state of this (quiescent) fabric.

        Returns a picklable, content-fingerprinted
        :class:`~repro.sim.snapshot.FabricSnapshot`; member devices
        cannot be snapshotted individually
        (``device.snapshot()`` raises
        :class:`~repro.sim.snapshot.SnapshotError` for fabric members —
        their link and engine state is shared).
        """
        from repro.sim.snapshot import snapshot_fabric
        return snapshot_fabric(self)

    @classmethod
    def fork(cls, snapshot, *, engine: Optional[str] = None) -> "Fabric":
        """Build a new fabric carrying ``snapshot``'s exact state."""
        from repro.sim.snapshot import fork_fabric
        return fork_fabric(snapshot, engine=engine)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "+".join(d.spec.generation for d in self.devices)
        return (f"Fabric({names}, links={len(self.links)}, "
                f"engine={self.engine_mode})")
