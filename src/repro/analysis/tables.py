"""Plain-text tables for benchmark output.

The benchmark harness prints each reproduced table/figure as rows of
``measured`` next to ``paper`` values so EXPERIMENTS.md can be assembled
straight from the bench logs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_comparison_row(label: str, measured: float, paper: float,
                         unit: str = "Kbps") -> List[str]:
    """One row of a measured-vs-paper comparison table."""
    ratio = measured / paper if paper else float("nan")
    return [label, f"{measured:.1f} {unit}", f"{paper:.1f} {unit}",
            f"{ratio:.2f}x"]
