"""Information-theoretic channel capacity (Section 10 context).

The paper compares against Hunger et al., who derive theoretical upper
bounds on contention-channel capacity.  For a binary channel with raw
bit rate ``B`` and symmetric bit-error probability ``p``, the Shannon
capacity is ``B * (1 - H(p))`` with ``H`` the binary entropy — the most
an ideal code could deliver.  For asymmetric errors (our channels flip
0→1 and 1→0 at different rates) the general binary asymmetric-channel
capacity applies.

These helpers let benchmark output report how close a measured channel
runs to its own theoretical ceiling.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.channels.base import ChannelResult
from repro.noise.metrics import compare_bits


def binary_entropy(p: float) -> float:
    """H(p) in bits; 0 at p ∈ {0, 1}."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def bsc_capacity(p: float) -> float:
    """Capacity (bits/use) of a binary symmetric channel with BER p."""
    return 1.0 - binary_entropy(min(p, 1.0 - p))


def asymmetric_capacity(p01: float, p10: float,
                        tol: float = 1e-9) -> float:
    """Capacity (bits/use) of a binary asymmetric channel.

    ``p01`` is P(receive 1 | send 0); ``p10`` is P(receive 0 | send 1).
    Computed by maximizing mutual information over the input
    distribution (ternary search — I(q) is concave in q).
    """
    for p in (p01, p10):
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")

    def mutual_information(q: float) -> float:
        # q = P(send 1)
        p_r1 = q * (1 - p10) + (1 - q) * p01
        h_out = binary_entropy(p_r1)
        h_noise = q * binary_entropy(p10) + (1 - q) * binary_entropy(p01)
        return h_out - h_noise

    lo, hi = 0.0, 1.0
    while hi - lo > tol:
        m1 = lo + (hi - lo) / 3
        m2 = hi - (hi - lo) / 3
        if mutual_information(m1) < mutual_information(m2):
            lo = m1
        else:
            hi = m2
    return max(0.0, mutual_information((lo + hi) / 2))


def capacity_bps(result: ChannelResult,
                 assume_symmetric: Optional[bool] = None) -> float:
    """Shannon capacity of a measured transmission, in bits/second.

    Uses the raw signalling rate (bits over elapsed time) times the
    per-use capacity implied by the observed error pattern.  With
    ``assume_symmetric=None`` the error asymmetry is estimated from the
    transmission itself (requires both symbol values in ``sent``).
    """
    raw_rate = result.n_bits / result.seconds if result.seconds else 0.0
    if result.error_free:
        return raw_rate
    if assume_symmetric is True:
        return raw_rate * bsc_capacity(result.ber)
    stats = compare_bits(result.sent, result.received)
    zeros = result.sent.count(0)
    ones = result.n_bits - zeros
    if zeros == 0 or ones == 0:
        return raw_rate * bsc_capacity(result.ber)
    p01 = stats.zero_to_one / zeros
    p10 = stats.one_to_zero / ones
    return raw_rate * asymmetric_capacity(p01, p10)
