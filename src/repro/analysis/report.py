"""Self-contained run-report dashboards from sweep manifests.

``repro report`` feeds any number of run manifests
(:mod:`repro.runner.manifest`) — plus optional live channel-quality and
attribution payloads — through :func:`render_report_html` to produce a
single HTML file with **zero external assets**: styling is one inline
``<style>`` block and every figure is inline SVG generated here
(class-conditional latency histograms, eye diagrams, attribution bars).
The same data renders as plain markdown via
:func:`render_report_markdown` for terminals and commit comments.

The result tables embedded in manifests are reproduced digit-for-digit
(the manifest stores the exact rows the experiment produced), so a
report over a cached sweep shows the same BER/bandwidth numbers the
golden regression suite pins.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "render_report_html",
    "render_report_markdown",
    "svg_attribution_bars",
    "svg_eye_diagram",
    "svg_histogram",
    "svg_sparkline",
    "write_report",
]

_CLASS0_COLOR = "#4878a8"   # bit = 0 (idle trojan)
_CLASS1_COLOR = "#c44e52"   # bit = 1 (priming trojan)
_ACCENT = "#2a2a2a"

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 62em; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #bbb; }
table { border-collapse: collapse; margin: .8em 0; font-size: .92em; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: left; }
th { background: #f0f0f0; }
tr:nth-child(even) td { background: #fafafa; }
.meta { color: #666; font-size: .85em; }
.flag { color: #c44e52; font-weight: bold; }
figure { display: inline-block; margin: .6em 1.2em .6em 0;
         vertical-align: top; }
figcaption { font-size: .8em; color: #555; text-align: center; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# ----------------------------------------------------------------------
# Inline SVG figures
# ----------------------------------------------------------------------
def svg_histogram(edges: Sequence[float], counts0: Sequence[int],
                  counts1: Sequence[int], *, width: int = 380,
                  height: int = 140, title: str = "") -> str:
    """Overlaid class-conditional latency histogram as inline SVG.

    ``edges`` has one more entry than each counts list; bit-0 bars draw
    behind bit-1 bars at partial opacity so overlap regions stay
    visible.
    """
    bins = max(len(counts0), len(counts1))
    if bins == 0 or len(edges) < 2:
        return (f'<svg width="{width}" height="{height}" '
                f'xmlns="http://www.w3.org/2000/svg">'
                f'<text x="8" y="20" font-size="12">no samples</text>'
                f'</svg>')
    peak = max(list(counts0) + list(counts1) + [1])
    pad_l, pad_b, pad_t = 6, 18, 14
    plot_w = width - 2 * pad_l
    plot_h = height - pad_b - pad_t
    bar_w = plot_w / bins
    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    if title:
        parts.append(f'<text x="{width / 2:.0f}" y="11" font-size="11" '
                     f'text-anchor="middle" fill="{_ACCENT}">'
                     f'{_esc(title)}</text>')
    for counts, color, opacity in ((counts0, _CLASS0_COLOR, 0.85),
                                   (counts1, _CLASS1_COLOR, 0.65)):
        for i, count in enumerate(counts):
            if not count:
                continue
            h = plot_h * count / peak
            x = pad_l + i * bar_w
            y = pad_t + plot_h - h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}" '
                f'fill-opacity="{opacity}"/>')
    lo, hi = edges[0], edges[-1]
    parts.append(f'<text x="{pad_l}" y="{height - 4}" font-size="10" '
                 f'fill="#555">{lo:.0f}</text>')
    parts.append(f'<text x="{width - pad_l}" y="{height - 4}" '
                 f'font-size="10" text-anchor="end" fill="#555">'
                 f'{hi:.0f} cyc</text>')
    parts.append("</svg>")
    return "".join(parts)


def svg_eye_diagram(stats: Dict[str, Any], *, width: int = 200,
                    height: int = 140, title: str = "") -> str:
    """Eye diagram: the two latency classes as bands, threshold as a
    line; the open gap between the bands is the eye.

    ``stats`` is a :func:`repro.obs.quality.signal_stats` mapping
    (mean/std per class and threshold); bands span mean ± std.
    """
    mean0 = float(stats.get("mean0", 0.0))
    mean1 = float(stats.get("mean1", 0.0))
    std0 = float(stats.get("std0", 0.0))
    std1 = float(stats.get("std1", 0.0))
    threshold = float(stats.get("threshold", 0.0))
    lo = min(mean0 - 2 * std0, mean1 - 2 * std1, threshold)
    hi = max(mean0 + 2 * std0, mean1 + 2 * std1, threshold)
    span = (hi - lo) or 1.0
    pad_t, pad_b = 14, 6

    def y(value: float) -> float:
        frac = (value - lo) / span
        return pad_t + (height - pad_t - pad_b) * (1.0 - frac)

    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    if title:
        parts.append(f'<text x="{width / 2:.0f}" y="11" font-size="11" '
                     f'text-anchor="middle" fill="{_ACCENT}">'
                     f'{_esc(title)}</text>')
    for mean, std, color, label in ((mean0, std0, _CLASS0_COLOR, "bit 0"),
                                    (mean1, std1, _CLASS1_COLOR, "bit 1")):
        top = y(mean + std)
        bottom = y(mean - std)
        parts.append(f'<rect x="30" y="{top:.1f}" width="{width - 95}" '
                     f'height="{max(bottom - top, 2.0):.1f}" '
                     f'fill="{color}" fill-opacity="0.5"/>')
        parts.append(f'<line x1="30" x2="{width - 65}" y1="{y(mean):.1f}" '
                     f'y2="{y(mean):.1f}" stroke="{color}" '
                     f'stroke-width="2"/>')
        parts.append(f'<text x="{width - 60}" y="{y(mean) + 4:.1f}" '
                     f'font-size="10" fill="{color}">{label} '
                     f'{mean:.0f}</text>')
    ty = y(threshold)
    parts.append(f'<line x1="20" x2="{width - 65}" y1="{ty:.1f}" '
                 f'y2="{ty:.1f}" stroke="{_ACCENT}" stroke-width="1.5" '
                 f'stroke-dasharray="5,3"/>')
    parts.append(f'<text x="{width - 60}" y="{ty + 4:.1f}" '
                 f'font-size="10" fill="{_ACCENT}">thr {threshold:.0f}'
                 f'</text>')
    parts.append("</svg>")
    return "".join(parts)


def svg_attribution_bars(by_context: Dict[str, Dict[str, float]], *,
                         width: int = 420, bar_height: int = 16,
                         title: str = "") -> str:
    """Stacked per-context queueing bars by resource group."""
    palette = ["#4878a8", "#c44e52", "#55a868", "#8172b3", "#ccb974",
               "#64b5cd", "#8c8c8c"]
    groups = sorted({g for parts in by_context.values() for g in parts})
    color = {g: palette[i % len(palette)] for i, g in enumerate(groups)}
    peak = max((sum(parts.values()) for parts in by_context.values()),
               default=0.0) or 1.0
    pad_t = 16 if title else 4
    row_h = bar_height + 8
    legend_h = 14 * len(groups)
    height = pad_t + row_h * len(by_context) + legend_h + 8
    label_w = 70
    plot_w = width - label_w - 10
    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    if title:
        parts.append(f'<text x="{width / 2:.0f}" y="11" font-size="11" '
                     f'text-anchor="middle" fill="{_ACCENT}">'
                     f'{_esc(title)}</text>')
    yy = pad_t
    for ctx, ctx_parts in sorted(by_context.items()):
        parts.append(f'<text x="0" y="{yy + bar_height - 3}" '
                     f'font-size="11" fill="{_ACCENT}">{_esc(ctx)}</text>')
        x = float(label_w)
        for group in groups:
            cycles = ctx_parts.get(group, 0.0)
            if cycles <= 0:
                continue
            w = plot_w * cycles / peak
            parts.append(f'<rect x="{x:.1f}" y="{yy}" width="{w:.1f}" '
                         f'height="{bar_height}" fill="{color[group]}"/>')
            x += w
        parts.append(f'<text x="{x + 4:.1f}" '
                     f'y="{yy + bar_height - 3}" font-size="10" '
                     f'fill="#555">'
                     f'{sum(ctx_parts.values()):.0f} cyc</text>')
        yy += row_h
    for i, group in enumerate(groups):
        ly = yy + 10 + 14 * i
        parts.append(f'<rect x="{label_w}" y="{ly - 9}" width="10" '
                     f'height="10" fill="{color[group]}"/>')
        parts.append(f'<text x="{label_w + 15}" y="{ly}" font-size="10" '
                     f'fill="#555">{_esc(group)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def svg_sparkline(values: Sequence[float], *, width: int = 160,
                  height: int = 36, color: str = _CLASS0_COLOR) -> str:
    """One metric trend across ledger runs as a tiny inline polyline.

    The latest point is emphasized with a dot; a flat series draws a
    midline.  Degenerate inputs (zero or one point) render a dot only.
    """
    pad = 4
    if not values:
        return (f'<svg width="{width}" height="{height}" '
                f'xmlns="http://www.w3.org/2000/svg"></svg>')
    lo, hi = min(values), max(values)
    span = hi - lo

    def x(i: int) -> float:
        if len(values) == 1:
            return width / 2
        return pad + (width - 2 * pad) * i / (len(values) - 1)

    def y(v: float) -> float:
        if span <= 0:
            return height / 2
        return pad + (height - 2 * pad) * (hi - v) / span

    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    if len(values) > 1:
        points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                          for i, v in enumerate(values))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
    parts.append(f'<circle cx="{x(len(values) - 1):.1f}" '
                 f'cy="{y(values[-1]):.1f}" r="2.5" fill="{color}"/>')
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------
def _html_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                caption: str = "") -> str:
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{_esc(caption)}</caption>")
    parts.append("<tr>" + "".join(f"<th>{_esc(h)}</th>" for h in headers)
                 + "</tr>")
    for row in rows:
        parts.append("<tr>" + "".join(f"<td>{_esc(_fmt(v))}</td>"
                                      for v in row) + "</tr>")
    parts.append("</table>")
    return "".join(parts)


def _quality_section_html(quality: List[Dict[str, Any]]) -> List[str]:
    out = ["<h2>Channel signal quality</h2>"]
    for q in quality:
        name = q.get("channel", "channel")
        stats = q.get("stats", {})
        out.append(f"<h3>{_esc(name)}</h3>")
        rows = [
            ["bits", q.get("n_bits", 0)],
            ["tagged samples", q.get("n_samples", 0)],
            ["BER", q.get("ber", 0.0)],
            ["bandwidth (Kbps)", q.get("bandwidth_kbps", 0.0)],
            ["bit-0 latency", f"{stats.get('mean0', 0)} "
                              f"± {stats.get('std0', 0)} cyc"],
            ["bit-1 latency", f"{stats.get('mean1', 0)} "
                              f"± {stats.get('std1', 0)} cyc"],
            ["threshold", stats.get("threshold", 0)],
            ["margin", stats.get("margin", 0)],
            ["eye height", stats.get("eye_height", 0)],
            ["SNR", stats.get("snr", 0)],
        ]
        out.append(_html_table(["signal metric", "value"], rows))
        hist = q.get("histogram", {})
        out.append("<figure>"
                   + svg_histogram(hist.get("edges", []),
                                   hist.get("bit0", []),
                                   hist.get("bit1", []),
                                   title="spy latency by sent bit")
                   + "<figcaption>blue: bit 0 &middot; red: bit 1"
                     "</figcaption></figure>")
        out.append("<figure>"
                   + svg_eye_diagram(stats, title="eye")
                   + "<figcaption>mean &plusmn; std per class"
                     "</figcaption></figure>")
        rolling = q.get("rolling_ber", [])
        if rolling:
            out.append(_html_table(
                ["window"] + [str(i) for i in range(len(rolling))],
                [["BER"] + [f"{b:.3f}" for b in rolling]],
                caption="rolling BER over the bit stream"))
        drift = q.get("drift", {})
        if drift.get("drifted"):
            out.append(f'<p class="flag">Threshold drift detected: '
                       f'moved {_esc(drift.get("max_shift"))} cycles '
                       f'(tolerance {_esc(drift.get("tolerance"))}).</p>')
        elif drift:
            out.append('<p class="meta">No threshold drift detected.'
                       '</p>')
    return out


def _attribution_section_html(attribution: Dict[str, Any]) -> List[str]:
    out = ["<h2>Contention attribution</h2>"]
    by_context = attribution.get("by_context", {})
    if not by_context:
        out.append('<p class="meta">No queueing recorded.</p>')
        return out
    out.append("<figure>"
               + svg_attribution_bars(by_context,
                                      title="queueing cycles by resource")
               + "</figure>")
    rows = [[ctx, group, cycles]
            for ctx, groups in by_context.items()
            for group, cycles in sorted(groups.items(),
                                        key=lambda kv: -kv[1])]
    out.append(_html_table(["context", "resource", "wait cycles"], rows))
    ports = attribution.get("by_port", {})
    if ports:
        port_rows = [[port, ctx, cycles]
                     for port, waits in ports.items()
                     for ctx, cycles in sorted(waits.items())]
        out.append(_html_table(["port", "context", "wait cycles"],
                               port_rows,
                               caption="per-port drill-down"))
    return out


def _transfer_frame_rows(frames: List[Dict[str, Any]],
                         limit: int = 40) -> tuple:
    """Per-frame table rows, capped: anomalies first, then the head.

    A 1 KiB transfer logs hundreds of transmissions; the interesting
    ones are the non-delivered. Returns ``(rows, note)`` where note
    describes any truncation (never silently dropped).
    """
    def row(f: Dict[str, Any]) -> List[Any]:
        return [f.get("index"), f.get("kind"), f.get("stream"),
                f.get("seq"), f.get("attempt"), f.get("status"),
                f.get("wire_bits"), f.get("bit_errors"),
                f.get("cycles")]

    if len(frames) <= limit:
        return [row(f) for f in frames], ""
    anomalies = [f for f in frames if f.get("status") != "delivered"]
    shown = anomalies[:limit]
    remainder = limit - len(shown)
    if remainder > 0:
        shown += [f for f in frames
                  if f.get("status") == "delivered"][:remainder]
    shown.sort(key=lambda f: (f.get("index", 0), f.get("attempt", 0)))
    note = (f"showing {len(shown)} of {len(frames)} transmissions "
            f"({len(anomalies)} anomalies, all shown first)"
            if len(anomalies) <= limit else
            f"showing {len(shown)} of {len(frames)} transmissions "
            f"({len(anomalies)} anomalies, truncated)")
    return [row(f) for f in shown], note


_FRAME_HEADERS = ["#", "kind", "stream", "seq", "attempt", "status",
                  "wire bits", "bit errors", "cycles"]


def _transfer_summary_rows(t: Dict[str, Any]) -> List[List[Any]]:
    params = t.get("params", {})
    goodput = t.get("goodput_bps", 0.0) or 0.0
    return [
        ["channel", t.get("channel", "?")],
        ["status", "delivered bit-exact" if t.get("ok")
         else ("ABORTED: " + (t.get("abort_reason") or "?")
               if t.get("aborted") else "corrupt delivery")],
        ["payload", f"{t.get('payload_bytes', 0)} B sent / "
                    f"{t.get('delivered_bytes', 0)} B delivered"],
        ["goodput", f"{goodput / 1e3:.3f} Kbps"],
        ["wire BER", f"{t.get('wire_ber', 0.0):.5f}"],
        ["payload BER (post-ARQ)", f"{t.get('payload_ber', 0.0):.6f}"],
        ["frame loss", f"{t.get('frame_loss', 0.0):.4f}"],
        ["efficiency (payload/wire)",
         f"{t.get('efficiency', 0.0):.3f}"],
        ["frames", f"{t.get('data_frames', 0)} data / "
                   f"{t.get('data_transmissions', 0)} transmissions / "
                   f"{t.get('retransmissions', 0)} retx"],
        ["ACKs", f"{t.get('ack_transmissions', 0)} sent, "
                 f"{t.get('ack_failures', 0)} corrupt"],
        ["handshake attempts", t.get("handshake_attempts", "?")],
        ["framing", f"{params.get('frame_bytes', '?')} B/frame, "
                    f"window {params.get('window', '?')}, "
                    f"ECC {'on' if params.get('ecc') else 'off'}"],
        ["simulated time", f"{t.get('seconds', 0.0) * 1e3:.3f} ms"],
    ]


def _stream_rows(t: Dict[str, Any]) -> List[List[Any]]:
    return [[s.get("stream"), s.get("name"), s.get("sent_bytes"),
             s.get("delivered_bytes"),
             "yes" if s.get("bit_exact") else "NO",
             s.get("payload_bit_errors"),
             (s.get("sha256") or "")[:16]]
            for s in t.get("streams", [])]


_STREAM_HEADERS = ["stream", "name", "sent B", "delivered B",
                   "bit-exact", "bit errors", "sha256 (prefix)"]


def _transfer_section_html(transfers: List[Dict[str, Any]]) -> List[str]:
    out = ["<h2>File transfer sessions</h2>"]
    for i, t in enumerate(transfers):
        label = t.get("meta", {}).get("label") or (
            f"{t.get('channel', 'channel')} session {i + 1}")
        flag = "" if t.get("ok") else ' <span class="flag">[failed]</span>'
        out.append(f"<h3>{_esc(label)}{flag}</h3>")
        out.append(_html_table(["transfer fact", "value"],
                               _transfer_summary_rows(t)))
        if t.get("streams"):
            out.append(_html_table(_STREAM_HEADERS, _stream_rows(t),
                                   caption="multiplexed streams"))
        frames = t.get("frames", [])
        if frames:
            rows, note = _transfer_frame_rows(frames)
            out.append(_html_table(_FRAME_HEADERS, rows,
                                   caption="per-frame outcomes"))
            if note:
                out.append(f'<p class="meta">{_esc(note)}</p>')
        if t.get("quality"):
            out.extend(_quality_section_html([t["quality"]]))
    return out


def _transfer_section_markdown(transfers: List[Dict[str, Any]]
                               ) -> List[str]:
    out = []
    for i, t in enumerate(transfers):
        label = t.get("meta", {}).get("label") or (
            f"{t.get('channel', 'channel')} session {i + 1}")
        out.append(f"### Transfer: {label}")
        out.append("")
        out.extend(_md_table(["transfer fact", "value"],
                             _transfer_summary_rows(t)))
        out.append("")
        if t.get("streams"):
            out.extend(_md_table(_STREAM_HEADERS, _stream_rows(t)))
            out.append("")
        frames = t.get("frames", [])
        if frames:
            rows, note = _transfer_frame_rows(frames, limit=20)
            out.extend(_md_table(_FRAME_HEADERS, rows))
            if note:
                out.append(f"_{note}_")
            out.append("")
    return out


def _trend_label(trend: Dict[str, Any]) -> str:
    dims = ":".join(d for d in (trend.get("channel", ""),
                                trend.get("gpu", ""),
                                trend.get("engine", "")) if d)
    return dims or trend.get("series", "?")


def _history_section_html(history: List[Dict[str, Any]]) -> List[str]:
    """Cross-run trend tables with one sparkline per metric series."""
    out = ["<h2>Cross-run history</h2>"]
    by_series: Dict[str, List[Dict[str, Any]]] = {}
    for trend in history:
        by_series.setdefault(trend.get("series", "?"), []).append(trend)
    for series in sorted(by_series):
        out.append(f"<h3>{_esc(series)}</h3>")
        rows = ["<tr><th>trend</th><th>metric</th><th>runs</th>"
                "<th>first</th><th>latest</th><th>trend line</th></tr>"]
        for trend in by_series[series]:
            values = trend.get("values", [])
            if not values:
                continue
            unit = f" {trend['unit']}" if trend.get("unit") else ""
            rows.append(
                "<tr>"
                f"<td>{_esc(_trend_label(trend))}</td>"
                f"<td>{_esc(trend.get('metric', '?'))}</td>"
                f"<td>{len(values)}</td>"
                f"<td>{_esc(_fmt(values[0]))}{_esc(unit)}</td>"
                f"<td>{_esc(_fmt(values[-1]))}{_esc(unit)}</td>"
                f"<td>{svg_sparkline(values)}</td>"
                "</tr>")
        out.append("<table>" + "".join(rows) + "</table>")
    return out


def _history_section_markdown(history: List[Dict[str, Any]]
                              ) -> List[str]:
    out = ["### Cross-run history", ""]
    rows = []
    for trend in history:
        values = trend.get("values", [])
        if not values:
            continue
        rows.append([
            trend.get("series", "?"), _trend_label(trend),
            trend.get("metric", "?"), len(values),
            " ".join(_fmt(v) for v in values),
        ])
    out.extend(_md_table(["series", "trend", "metric", "runs",
                          "values"], rows))
    out.append("")
    return out


def render_report_html(manifests: List[Dict[str, Any]], *,
                       title: str = "repro run report") -> str:
    """One self-contained HTML dashboard over any number of manifests."""
    from repro.obs.provenance import code_version

    parts = ["<!DOCTYPE html>", '<html lang="en"><head>',
             '<meta charset="utf-8">',
             f"<title>{_esc(title)}</title>",
             f"<style>{_STYLE}</style>", "</head><body>",
             f"<h1>{_esc(title)}</h1>",
             f'<p class="meta">rendered by {_esc(code_version())} '
             f"over {len(manifests)} manifest(s)</p>"]
    for i, manifest in enumerate(manifests):
        prov = manifest.get("provenance", {})
        counts = manifest.get("counts", {})
        label = manifest.get("label") or f"run {i + 1}"
        parts.append(f"<h2>Run: {_esc(label)}</h2>")
        meta_rows = [
            ["code version", prov.get("code_version", "unknown")],
            ["tasks", sum(counts.values())],
            ["ran / cached / failed",
             f"{counts.get('ran', 0)} / {counts.get('cache', 0)} / "
             f"{counts.get('failed', 0)}"],
        ]
        if manifest.get("wall_seconds") is not None:
            meta_rows.append(["wall time",
                              f"{manifest['wall_seconds']} s"])
        if manifest.get("command"):
            meta_rows.append(["command",
                              " ".join(manifest["command"])])
        parts.append(_html_table(["run fact", "value"], meta_rows))
        failures = [t for t in manifest.get("tasks", [])
                    if t.get("source") == "failed"]
        if failures:
            parts.append(_html_table(
                ["task", "attempts", "error"],
                [[t["label"], t["attempts"], t.get("error") or ""]
                 for t in failures],
                caption="failed tasks"))
        for result in manifest.get("results", []):
            scope = (f" [{result['spec_name']}]"
                     if result.get("spec_name") else "")
            parts.append(f"<h3>{_esc(result['experiment_id'])}{scope}: "
                         f"{_esc(result['description'])}</h3>")
            parts.append(_html_table(result["headers"], result["rows"]))
        if manifest.get("quality"):
            parts.extend(_quality_section_html(manifest["quality"]))
        if manifest.get("attribution"):
            parts.extend(
                _attribution_section_html(manifest["attribution"]))
        if manifest.get("transfers"):
            parts.extend(_transfer_section_html(manifest["transfers"]))
        if manifest.get("history"):
            parts.extend(_history_section_html(manifest["history"]))
    parts.append("</body></html>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Markdown fallback
# ----------------------------------------------------------------------
def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> List[str]:
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        out.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return out


def render_report_markdown(manifests: List[Dict[str, Any]], *,
                           title: str = "repro run report") -> str:
    """Markdown rendering of the same dashboard (no figures)."""
    from repro.obs.provenance import code_version

    out = [f"# {title}", "",
           f"_rendered by {code_version()} over "
           f"{len(manifests)} manifest(s)_", ""]
    for i, manifest in enumerate(manifests):
        counts = manifest.get("counts", {})
        label = manifest.get("label") or f"run {i + 1}"
        out.append(f"## Run: {label}")
        out.append("")
        out.append(f"- tasks: {sum(counts.values())} "
                   f"({counts.get('ran', 0)} ran, "
                   f"{counts.get('cache', 0)} cached, "
                   f"{counts.get('failed', 0)} failed)")
        prov = manifest.get("provenance", {})
        out.append(f"- code version: {prov.get('code_version', '?')}")
        out.append("")
        for result in manifest.get("results", []):
            scope = (f" [{result['spec_name']}]"
                     if result.get("spec_name") else "")
            out.append(f"### {result['experiment_id']}{scope}: "
                       f"{result['description']}")
            out.append("")
            out.extend(_md_table(result["headers"], result["rows"]))
            out.append("")
        for q in manifest.get("quality", []):
            stats = q.get("stats", {})
            out.append(f"### Signal quality: {q.get('channel')}")
            out.append("")
            out.extend(_md_table(
                ["metric", "value"],
                [["BER", q.get("ber")],
                 ["bandwidth (Kbps)", q.get("bandwidth_kbps")],
                 ["SNR", stats.get("snr")],
                 ["eye height", stats.get("eye_height")],
                 ["threshold", stats.get("threshold")],
                 ["drifted", q.get("drift", {}).get("drifted")]]))
            out.append("")
        if manifest.get("transfers"):
            out.extend(
                _transfer_section_markdown(manifest["transfers"]))
        if manifest.get("history"):
            out.extend(_history_section_markdown(manifest["history"]))
        attribution = manifest.get("attribution")
        if attribution and attribution.get("by_context"):
            out.append("### Contention attribution")
            out.append("")
            out.extend(_md_table(
                ["context", "resource", "wait cycles"],
                [[ctx, group, cycles]
                 for ctx, groups in attribution["by_context"].items()
                 for group, cycles in sorted(groups.items(),
                                             key=lambda kv: -kv[1])]))
            out.append("")
    return "\n".join(out)


def write_report(path: str, manifests: List[Dict[str, Any]], *,
                 fmt: Optional[str] = None,
                 title: str = "repro run report") -> str:
    """Render and write a dashboard; returns the format used.

    ``fmt`` is ``"html"`` or ``"markdown"``; ``None`` infers from the
    extension (``.md``/``.markdown`` → markdown, anything else HTML).
    """
    if fmt is None:
        fmt = ("markdown" if path.endswith((".md", ".markdown"))
               else "html")
    if fmt not in ("html", "markdown"):
        raise ValueError(f"unknown report format {fmt!r}; "
                         f"choose 'html' or 'markdown'")
    render = (render_report_html if fmt == "html"
              else render_report_markdown)
    text = render(manifests, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.write("\n")
    return fmt
