"""Measurement harnesses: sweeps, report tables, plots, capacity."""

from repro.analysis.sweeps import ber_vs_bandwidth, bandwidth_by_device
from repro.analysis.tables import format_table, paper_comparison_row
from repro.analysis.capacity import (
    asymmetric_capacity,
    binary_entropy,
    bsc_capacity,
    capacity_bps,
)
from repro.analysis.plots import ascii_plot, sparkline

__all__ = [
    "ascii_plot",
    "asymmetric_capacity",
    "bandwidth_by_device",
    "ber_vs_bandwidth",
    "binary_entropy",
    "bsc_capacity",
    "capacity_bps",
    "format_table",
    "paper_comparison_row",
    "sparkline",
]
