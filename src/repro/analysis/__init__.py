"""Measurement harnesses: sweeps, report tables, plots, capacity."""

from repro.analysis.sweeps import ber_vs_bandwidth, bandwidth_by_device
from repro.analysis.tables import format_table, paper_comparison_row
from repro.analysis.capacity import (
    asymmetric_capacity,
    binary_entropy,
    bsc_capacity,
    capacity_bps,
)
from repro.analysis.montecarlo import MonteCarloBER, monte_carlo_ber
from repro.analysis.plots import ascii_plot, sparkline
from repro.analysis.report import (
    render_report_html,
    render_report_markdown,
    write_report,
)

__all__ = [
    "ascii_plot",
    "asymmetric_capacity",
    "bandwidth_by_device",
    "ber_vs_bandwidth",
    "binary_entropy",
    "bsc_capacity",
    "capacity_bps",
    "format_table",
    "monte_carlo_ber",
    "MonteCarloBER",
    "paper_comparison_row",
    "render_report_html",
    "render_report_markdown",
    "sparkline",
    "write_report",
]
