"""Parameter-sweep harnesses shared by the benchmarks.

``ber_vs_bandwidth`` regenerates the Figure 5 trade-off (lower the
iteration count per bit, gain bandwidth, pay bit errors);
``bandwidth_by_device`` runs one channel factory across the paper's
three GPUs for the grouped-bar figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.arch.specs import GPUSpec
from repro.channels.base import ChannelResult, CovertChannel, random_bits
from repro.sim.gpu import Device

#: Builds a fresh channel on a fresh device for one sweep point.
ChannelFactory = Callable[[Device], CovertChannel]


@dataclass(frozen=True)
class SweepPoint:
    """One point of an iterations/bandwidth/BER sweep."""

    iterations: int
    bandwidth_kbps: float
    ber: float


def ber_vs_bandwidth(spec: GPUSpec,
                     factory: Callable[[Device, int], CovertChannel],
                     iterations_list: Sequence[int], *,
                     n_bits: int = 64,
                     seed: int = 0) -> List[SweepPoint]:
    """Sweep iterations-per-bit; returns (iterations, bandwidth, BER).

    ``factory(device, iterations)`` must build the channel under test.
    Each point runs on a fresh device so cache and queue state cannot
    leak between configurations.
    """
    points: List[SweepPoint] = []
    bits = random_bits(n_bits, seed=seed)
    for idx, iters in enumerate(iterations_list):
        device = Device(spec, seed=seed + 17 * idx + 1)
        channel = factory(device, iters)
        result = channel.transmit(bits)
        points.append(SweepPoint(iterations=iters,
                                 bandwidth_kbps=result.bandwidth_kbps,
                                 ber=result.ber))
    return points


def bandwidth_by_device(specs: Sequence[GPUSpec],
                        factory: ChannelFactory, *,
                        n_bits: int = 64,
                        seed: int = 0) -> Dict[str, ChannelResult]:
    """Run one channel configuration on each device; keyed by generation."""
    results: Dict[str, ChannelResult] = {}
    for idx, spec in enumerate(specs):
        device = Device(spec, seed=seed + 31 * idx + 1)
        channel = factory(device)
        results[spec.generation] = channel.transmit_random(n_bits,
                                                           seed=seed)
    return results
