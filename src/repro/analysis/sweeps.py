"""Parameter-sweep harnesses shared by the benchmarks.

``ber_vs_bandwidth`` regenerates the Figure 5 trade-off (lower the
iteration count per bit, gain bandwidth, pay bit errors);
``bandwidth_by_device`` runs one channel factory across the paper's
three GPUs for the grouped-bar figures.

Each sweep warms one pristine baseline device per call and forks it
per point via :meth:`repro.sim.gpu.Device.fork` — bit-identical to
constructing a fresh device per point (the snapshot test suite pins
this), but every point becomes a resumable unit: pass ``snapshots=``
(a :class:`repro.runner.cache.SnapshotStore`) and completed points are
persisted and replayed on the next invocation after a
fingerprint-verified fork of their end state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.arch.specs import GPUSpec
from repro.channels.base import ChannelResult, CovertChannel, random_bits
from repro.seeds import BER_SWEEP_STRIDE, DEVICE_SWEEP_STRIDE, derive_seed
from repro.sim.gpu import Device, resolve_engine_mode
from repro.sim.snapshot import memoized_point

#: Builds a fresh channel on a fresh device for one sweep point.
ChannelFactory = Callable[[Device], CovertChannel]


@dataclass(frozen=True)
class SweepPoint:
    """One point of an iterations/bandwidth/BER sweep."""

    iterations: int
    bandwidth_kbps: float
    ber: float


def _callable_tag(fn: Callable) -> str:
    """Default snapshot-tag component naming a channel factory.

    Lambdas from different call sites can share a qualname; callers
    memoizing more than one factory per ``(spec, seed)`` should pass an
    explicit ``snapshot_tag`` instead (``figures.fig5_data`` does).
    """
    return (f"{getattr(fn, '__module__', '?')}"
            f".{getattr(fn, '__qualname__', repr(fn))}")


def ber_vs_bandwidth(spec: GPUSpec,
                     factory: Callable[[Device, int], CovertChannel],
                     iterations_list: Sequence[int], *,
                     n_bits: int = 64,
                     seed: int = 0,
                     snapshots=None,
                     snapshot_tag: Optional[str] = None
                     ) -> List[SweepPoint]:
    """Sweep iterations-per-bit; returns (iterations, bandwidth, BER).

    ``factory(device, iterations)`` must build the channel under test.
    Each point runs on a private fork of one pristine baseline, reseeded
    per point, so cache and queue state cannot leak between
    configurations.  With ``snapshots=`` set, finished points are
    persisted and replayed across invocations.
    """
    points: List[SweepPoint] = []
    bits = random_bits(n_bits, seed=seed)
    engine = resolve_engine_mode()
    tag_root = snapshot_tag if snapshot_tag is not None \
        else _callable_tag(factory)
    baseline = None
    for idx, iters in enumerate(iterations_list):
        point_seed = derive_seed(seed, BER_SWEEP_STRIDE, idx)

        def run(iters=iters, point_seed=point_seed):
            nonlocal baseline
            if baseline is None:
                baseline = Device(spec, seed=seed).snapshot()
            device = Device.fork(baseline, seed=point_seed)
            channel = factory(device, iters)
            result = channel.transmit(bits)
            return device, SweepPoint(iterations=iters,
                                      bandwidth_kbps=result.bandwidth_kbps,
                                      ber=result.ber)

        key = None
        if snapshots is not None:
            from repro.runner.keys import snapshot_key
            key = snapshot_key(
                spec, point_seed, engine,
                f"{tag_root}/ber_vs_bandwidth/{n_bits}/{seed}"
                f"/{idx}/{iters}")
        points.append(memoized_point(snapshots, key, run))
    return points


def bandwidth_by_device(specs: Sequence[GPUSpec],
                        factory: ChannelFactory, *,
                        n_bits: int = 64,
                        seed: int = 0,
                        snapshots=None,
                        snapshot_tag: Optional[str] = None
                        ) -> Dict[str, ChannelResult]:
    """Run one channel configuration on each device; keyed by generation."""
    results: Dict[str, ChannelResult] = {}
    engine = resolve_engine_mode()
    tag_root = snapshot_tag if snapshot_tag is not None \
        else _callable_tag(factory)
    for idx, spec in enumerate(specs):
        point_seed = derive_seed(seed, DEVICE_SWEEP_STRIDE, idx)

        def run(spec=spec, point_seed=point_seed):
            baseline = Device(spec, seed=seed).snapshot()
            device = Device.fork(baseline, seed=point_seed)
            channel = factory(device)
            return device, channel.transmit_random(n_bits, seed=seed)

        key = None
        if snapshots is not None:
            from repro.runner.keys import snapshot_key
            key = snapshot_key(
                spec, point_seed, engine,
                f"{tag_root}/bandwidth_by_device/{n_bits}/{seed}/{idx}")
        results[spec.generation] = memoized_point(snapshots, key, run)
    return results
