"""Monte-Carlo BER estimation over seed-replica fleets.

The paper reports bit error rates (Figure 5, Table 1) as point numbers
measured on one physical card; on the simulator, the analogous number
for one seed is a point sample from the jitter/launch-noise
distribution.  :func:`monte_carlo_ber` turns that point sample into a
distribution estimate: it runs the *same* transmission over K device
replicas that differ only in derived seed
(:data:`repro.seeds.REPLICA_STRIDE`), using the ``batched`` engine so
the fleet costs a fraction of K solo runs, and aggregates per-replica
BER plus the :func:`repro.obs.quality.rolling_ber` temporal profile.

Each replica is bit-identical to a solo run of its seed (the
equivalence invariant of :class:`repro.sim.batch.ReplicaBatch`), so the
Monte-Carlo estimate is exactly what K independent ``fast``-engine runs
would produce — only cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.channels.base import random_bits
from repro.obs.quality import rolling_ber
from repro.sim.batch import ReplicaBatch


@dataclass
class MonteCarloBER:
    """Aggregate of one Monte-Carlo BER run (see :func:`monte_carlo_ber`).

    ``rolling`` holds one :func:`~repro.obs.quality.rolling_ber` profile
    per replica; ``rolling_mean`` averages them per window, exposing
    systematic temporal structure (warm-up errors, drift) that survives
    seed averaging.
    """

    spec_name: str
    bits: List[int]
    seeds: List[int] = field(default_factory=list)
    bers: List[float] = field(default_factory=list)
    received: List[List[int]] = field(default_factory=list)
    results: List[Any] = field(default_factory=list)
    rolling: List[List[float]] = field(default_factory=list)
    rolling_mean: List[float] = field(default_factory=list)
    window: int = 16

    @property
    def mean_ber(self) -> float:
        return sum(self.bers) / len(self.bers) if self.bers else 0.0

    @property
    def std_ber(self) -> float:
        if len(self.bers) < 2:
            return 0.0
        m = self.mean_ber
        return (sum((b - m) ** 2 for b in self.bers)
                / (len(self.bers) - 1)) ** 0.5

    @property
    def worst_ber(self) -> float:
        return max(self.bers) if self.bers else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "n_bits": len(self.bits),
            "batch": len(self.seeds),
            "seeds": list(self.seeds),
            "window": self.window,
            "bers": [round(b, 6) for b in self.bers],
            "mean_ber": round(self.mean_ber, 6),
            "std_ber": round(self.std_ber, 6),
            "worst_ber": round(self.worst_ber, 6),
            "rolling_mean": [round(b, 6) for b in self.rolling_mean],
        }


def monte_carlo_ber(spec: Any,
                    channel_factory: Callable[[Any], Any], *,
                    bits: Optional[Sequence[int]] = None,
                    n_bits: int = 48,
                    base_seed: int = 0,
                    batch: int = 8,
                    window: int = 16,
                    store: Optional[Any] = None,
                    observe: Any = None) -> MonteCarloBER:
    """Estimate a channel's BER distribution over ``batch`` seed replicas.

    ``channel_factory(device)`` builds the channel under test on each
    replica.  The message defaults to :func:`repro.channels.base.
    random_bits(n_bits, seed=base_seed)` so runs are reproducible per
    ``(spec, base_seed)``.  Replica seeds are
    ``derive_seed(base_seed, REPLICA_STRIDE, i)`` — disjoint from the
    sweep-grid seed lanes, so Monte-Carlo never aliases a sweep point.

    Returns a :class:`MonteCarloBER`; ``results`` holds the full
    per-replica :class:`~repro.channels.base.ChannelResult` objects for
    downstream analytics (e.g. :func:`repro.obs.quality.channel_quality`
    when the fleet is observed).
    """
    msg = [int(b) for b in (bits if bits is not None
                            else random_bits(n_bits, seed=base_seed))]
    fleet = ReplicaBatch(spec, batch=batch, base_seed=base_seed,
                         store=store, observe=observe)
    results = fleet.transmit(channel_factory, msg)
    out = MonteCarloBER(spec_name=spec.name, bits=msg,
                        seeds=list(fleet.seeds), window=window)
    for res in results:
        out.results.append(res)
        out.received.append(list(res.received))
        out.bers.append(res.ber)
        out.rolling.append(rolling_ber(msg, res.received, window=window))
    if out.rolling:
        n_windows = len(out.rolling[0])
        out.rolling_mean = [
            sum(prof[w] for prof in out.rolling) / len(out.rolling)
            for w in range(n_windows)
        ]
    return out
