"""Terminal plotting for experiment data.

A small ASCII scatter/line renderer so the CLI and examples can show
the Figure 2/3/6/7 shapes without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Point = Tuple[float, float]


def ascii_plot(series: Sequence[Point], *,
               width: int = 64, height: int = 16,
               title: Optional[str] = None,
               marker: str = "*") -> str:
    """Render (x, y) points as an ASCII scatter plot."""
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    xs = [p[0] for p in series]
    ys = [p[1] for p in series]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in series:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.0f}"
    label_lo = f"{y_lo:.0f}"
    pad = max(len(label_hi), len(label_lo))
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = label_hi.rjust(pad)
        elif i == height - 1:
            prefix = label_lo.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_cells)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_lo:.0f}".ljust(width - 8) + f"{x_hi:.0f}".rjust(8)
    lines.append(" " * pad + "  " + x_axis)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line bar rendering of a series (for compact tables)."""
    if not values:
        raise ValueError("nothing to render")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values
    )
