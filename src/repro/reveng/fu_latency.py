"""Functional-unit latency characterization (Section 5.1, Figures 6–7).

One kernel runs a dependent chain of the target operation on an
increasing number of warps, and warp 0's mean per-op latency (averaged
over 128 iterations, as in the paper) is recorded.  The resulting curve
is flat at the pipeline latency until the warps sharing warp 0's
scheduler saturate its dispatch bandwidth, then climbs in steps — the
step spacing in total warps equals the scheduler count, because the
round-robin assignment adds one warp per scheduler per group.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arch.specs import GPUSpec
from repro.sim import isa
from repro.sim.gpu import Device, resolve_engine_mode
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.snapshot import memoized_point

#: A measured (n_warps, warp0_latency) point.
CurvePoint = Tuple[int, float]


def _latency_kernel(op: str, iterations: int):
    def body(ctx):
        t0 = yield isa.ReadClock()
        for _ in range(iterations):
            yield isa.FuOp(op)
        t1 = yield isa.ReadClock()
        if ctx.warp_in_block == 0 and ctx.block_idx == 0:
            ctx.out["latency"] = (t1 - t0) / iterations
    return body


def _measure_on(device: Device, op: str, n_warps: int,
                iterations: int) -> float:
    """Run one latency probe on an already-built (pristine) device."""
    if n_warps < 1:
        raise ValueError("need at least one warp")
    kernel = Kernel(_latency_kernel(op, iterations),
                    KernelConfig(grid=1, block_threads=32 * n_warps))
    device.launch(kernel)
    device.synchronize()
    return kernel.out["latency"]


def measure_latency(spec: GPUSpec, op: str, n_warps: int, *,
                    iterations: int = 128, seed: int = 0) -> float:
    """Warp-0 per-op latency with ``n_warps`` resident warps."""
    if n_warps < 1:
        raise ValueError("need at least one warp")
    return _measure_on(Device(spec, seed=seed), op, n_warps, iterations)


def latency_curve(spec: GPUSpec, op: str,
                  warp_counts: Optional[Sequence[int]] = None, *,
                  iterations: int = 128,
                  seed: int = 0,
                  snapshots=None) -> List[CurvePoint]:
    """The Figure 6/7 curve for one op on one device.

    Probes run on per-probe forks of one pristine baseline device —
    bit-identical to :func:`measure_latency`'s fresh construction —
    and are persisted across invocations when ``snapshots=`` (a
    :class:`repro.runner.cache.SnapshotStore`) is given.
    """
    if warp_counts is None:
        warp_counts = range(1, 33)
    engine = resolve_engine_mode()
    baseline = None
    points: List[CurvePoint] = []
    for w in warp_counts:

        def run(w=w):
            nonlocal baseline
            if baseline is None:
                baseline = Device(spec, seed=seed).snapshot()
            device = Device.fork(baseline)
            return device, _measure_on(device, op, w, iterations)

        key = None
        if snapshots is not None:
            from repro.runner.keys import snapshot_key
            key = snapshot_key(spec, seed, engine,
                               f"reveng.fu_latency/{op}/{w}/{iterations}")
        points.append((w, memoized_point(snapshots, key, run)))
    return points


def plateau_latency(curve: Sequence[CurvePoint]) -> float:
    """The no-contention latency (value of the initial flat region)."""
    if not curve:
        raise ValueError("empty curve")
    return curve[0][1]


def contention_onset(curve: Sequence[CurvePoint],
                     tolerance: float = 0.10) -> Optional[int]:
    """First warp count whose latency exceeds the plateau by >tolerance.

    Returns None if the curve never leaves the plateau (e.g. Kepler
    single-precision Add, which has too many SP units to saturate).
    """
    plateau = plateau_latency(curve)
    for n_warps, latency in curve:
        if latency > plateau * (1.0 + tolerance):
            return n_warps
    return None


def scheduler_count_from_steps(curve: Sequence[CurvePoint],
                               tolerance: float = 0.02) -> Optional[int]:
    """Infer the warp-scheduler count from the step spacing.

    In the rising region, latency increases once every N added warps
    (one lands on the measured warp's scheduler per group of N under
    round-robin); the modal gap between increases is N.
    """
    increases: List[int] = []
    prev_lat = None
    for n_warps, latency in curve:
        if prev_lat is not None and latency > prev_lat * (1 + tolerance):
            increases.append(n_warps)
        prev_lat = latency
    if len(increases) < 2:
        return None
    gaps = [b - a for a, b in zip(increases, increases[1:])]
    return max(set(gaps), key=gaps.count)
