"""Warp→scheduler assignment reverse engineering (Sections 3.1, 7.2).

The paper infers the round-robin warp assignment by adding warps one at
a time and observing *which* warps slow down: with N schedulers and
round-robin assignment, adding warp ``k`` slows exactly the warps
``w ≡ k (mod N)``.  We reproduce that methodology: measure per-warp
latency at ``W`` and ``W+1`` warps, take the set of slowed warps, and
recover N as the common stride.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch.specs import GPUSpec
from repro.sim import isa
from repro.sim.gpu import Device
from repro.sim.kernel import Kernel, KernelConfig


def _per_warp_latency_kernel(op: str, iterations: int):
    def body(ctx):
        t0 = yield isa.ReadClock()
        for _ in range(iterations):
            yield isa.FuOp(op)
        t1 = yield isa.ReadClock()
        ctx.out.setdefault("latency", {})[ctx.warp_in_block] = (
            (t1 - t0) / iterations
        )
    return body


def per_warp_latencies(spec: GPUSpec, op: str, n_warps: int, *,
                       iterations: int = 96,
                       seed: int = 0) -> Dict[int, float]:
    """Per-warp mean op latency with ``n_warps`` resident warps."""
    device = Device(spec, seed=seed)
    kernel = Kernel(_per_warp_latency_kernel(op, iterations),
                    KernelConfig(grid=1, block_threads=32 * n_warps))
    device.launch(kernel)
    device.synchronize()
    return kernel.out["latency"]


def slowed_warps(spec: GPUSpec, op: str, n_warps: int, *,
                 tolerance: float = 0.05,
                 seed: int = 0) -> List[int]:
    """Warps whose latency rises when warp ``n_warps`` is added."""
    before = per_warp_latencies(spec, op, n_warps, seed=seed)
    after = per_warp_latencies(spec, op, n_warps + 1, seed=seed)
    return sorted(
        w for w in before
        if after[w] > before[w] * (1.0 + tolerance)
    )


def infer_warp_schedulers(spec: GPUSpec, *, op: str = "sinf",
                          max_warps: Optional[int] = None,
                          seed: int = 0) -> Optional[int]:
    """Infer the number of warp schedulers purely from contention.

    Scans warp counts in the contended region; the slowed-warp sets are
    arithmetic progressions whose stride is the scheduler count.
    """
    if max_warps is None:
        max_warps = 4 * spec.warp_schedulers + 4  # attacker over-scans
    strides: List[int] = []
    for n_warps in range(2, max_warps):
        slowed = slowed_warps(spec, op, n_warps, seed=seed)
        if len(slowed) >= 2:
            gaps = {b - a for a, b in zip(slowed, slowed[1:])}
            if len(gaps) == 1:
                strides.append(gaps.pop())
        elif len(slowed) == 1 and n_warps > slowed[0]:
            # A single slowed warp w when adding warp n means both map
            # to the same scheduler: stride divides (n - w).
            strides.append(n_warps - slowed[0])
    if not strides:
        return None
    return max(set(strides), key=strides.count)
