"""Offline constant-cache characterization (Section 4.1, Figures 2–3).

Implements the Wong et al. microbenchmark: load arrays of increasing
size from constant memory with a fixed stride, timing a second pass
after warming.  While the array fits, latency is flat; once it spills,
misses appear set by set — the number of steps equals the number of
sets, the step width equals the line size, and associativity follows
from ``size / (line * sets)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.specs import GPUSpec
from repro.sim import isa
from repro.sim.gpu import Device, resolve_engine_mode
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.snapshot import memoized_point

#: A measured (array_size_bytes, mean_latency_cycles) point.
LatencyPoint = Tuple[int, float]


@dataclass(frozen=True)
class CacheParams:
    """Cache geometry recovered from a latency sweep."""

    size_bytes: int
    line_bytes: int
    n_sets: int

    @property
    def ways(self) -> int:
        """Associativity implied by size, line and set count."""
        return self.size_bytes // (self.line_bytes * self.n_sets)


def _sweep_kernel(base: int, size: int, stride: int, repeats: int):
    def body(ctx):
        addrs = list(range(base, base + size, stride))
        for a in addrs:                      # warm pass (untimed)
            yield isa.ConstLoad(a)
        total = 0.0
        count = 0
        for _ in range(repeats):
            for a in addrs:
                t0 = yield isa.ReadClock()
                yield isa.ConstLoad(a)
                t1 = yield isa.ReadClock()
                total += t1 - t0
                count += 1
        ctx.out["latency"] = total / count
    return body


def _measure_on(device: Device, spec: GPUSpec, size: int, stride: int,
                repeats: int) -> float:
    """Run one latency probe on an already-built (pristine) device."""
    span = ((size + 4095) // 4096 + 1) * 4096
    base = device.const_alloc(min(span, spec.const_mem_bytes),
                              align=spec.const_l2.way_stride)
    kernel = Kernel(_sweep_kernel(base, size, stride, repeats),
                    KernelConfig(grid=1, block_threads=32))
    device.launch(kernel)
    device.synchronize()
    return kernel.out["latency"]


def measure_point(spec: GPUSpec, size: int, stride: int,
                  repeats: int = 4, seed: int = 0) -> float:
    """Mean per-load latency for one array size on a fresh device."""
    return _measure_on(Device(spec, seed=seed), spec, size, stride,
                       repeats)


def characterize_cache(spec: GPUSpec, level: str = "l1", *,
                       sizes: Optional[Sequence[int]] = None,
                       stride: Optional[int] = None,
                       repeats: int = 4,
                       seed: int = 0,
                       snapshots=None) -> List[LatencyPoint]:
    """Run the stride sweep for one cache level; returns (size, latency).

    Defaults reproduce the paper's figures: stride 64 B around 2–3 KB for
    the L1 (Figure 2), stride 256 B around 31–38 KB for the L2
    (Figure 3).

    Probes run on per-probe forks of one pristine baseline device —
    bit-identical to :func:`measure_point`'s fresh construction — and
    are persisted across invocations when ``snapshots=`` (a
    :class:`repro.runner.cache.SnapshotStore`) is given.
    """
    if level == "l1":
        cache = spec.const_l1
        stride = stride or cache.line_bytes
        if sizes is None:
            lo = cache.size_bytes - 4 * cache.line_bytes * 1
            hi = cache.size_bytes + (cache.n_sets + 4) * cache.line_bytes
            sizes = range(lo, hi + 1, cache.line_bytes)
    elif level == "l2":
        cache = spec.const_l2
        stride = stride or cache.line_bytes
        if sizes is None:
            lo = cache.size_bytes - 4 * cache.line_bytes
            hi = cache.size_bytes + (cache.n_sets + 4) * cache.line_bytes
            sizes = range(lo, hi + 1, cache.line_bytes)
    else:
        raise ValueError("level must be 'l1' or 'l2'")

    engine = resolve_engine_mode()
    baseline = None
    points: List[LatencyPoint] = []
    for size in sizes:

        def run(size=size):
            nonlocal baseline
            if baseline is None:
                baseline = Device(spec, seed=seed).snapshot()
            device = Device.fork(baseline)
            return device, _measure_on(device, spec, size, stride,
                                       repeats)

        key = None
        if snapshots is not None:
            from repro.runner.keys import snapshot_key
            key = snapshot_key(
                spec, seed, engine,
                f"reveng.cache_params/{level}/{size}/{stride}/{repeats}")
        points.append((size, memoized_point(snapshots, key, run)))
    return points


def infer_cache_parameters(points: Sequence[LatencyPoint],
                           stride: int,
                           plateau_tolerance: float = 0.08) -> CacheParams:
    """Recover cache geometry from a latency sweep.

    * **size** — largest array still within ``(1+tol)`` of the initial
      plateau latency;
    * **line size** — the sweep stride at which each new step appears
      (the step width; equals the stride when the sweep uses the line
      size, as the paper's does);
    * **set count** — number of upward steps between the plateau and the
      saturated region.
    """
    if len(points) < 3:
        raise ValueError("need at least 3 sweep points")
    sizes = [p[0] for p in points]
    lats = [p[1] for p in points]
    plateau = lats[0]
    cutoff = plateau * (1.0 + plateau_tolerance)

    size_idx = 0
    for i, lat in enumerate(lats):
        if lat <= cutoff:
            size_idx = i
        else:
            break
    cache_size = sizes[size_idx]

    # Saturated latency = final value; count distinct rising levels
    # between plateau and saturation.
    saturated = lats[-1]
    rising = [lat for lat in lats[size_idx + 1:]
              if cutoff < lat < saturated * 0.98]
    # Each spilled set adds one step of roughly equal height.
    if rising:
        step_height = (saturated - plateau) / (len(rising) + 1)
        n_sets = round((saturated - plateau) / step_height) if step_height else 1
        n_sets = len(rising) + 1
    else:
        n_sets = 1
    line_bytes = stride
    # Snap the set count to the nearest power of two (hardware caches
    # index with address bits).
    n_sets = 1 << max(0, round(_log2(n_sets)))
    return CacheParams(size_bytes=cache_size, line_bytes=line_bytes,
                       n_sets=n_sets)


def _log2(x: float) -> float:
    import math
    return math.log2(max(1.0, float(x)))
