"""Reverse-engineering toolkit (Sections 3, 4.1 and 5.1).

The attack's first phase characterizes the target device using only
observable behaviour — ``%smid``, ``clock()`` and crafted access
patterns:

* :mod:`repro.reveng.cache_params` — Wong et al. stride microbenchmarks
  recovering constant cache size / line / associativity (Figures 2–3).
* :mod:`repro.reveng.fu_latency` — functional-unit latency vs. warp
  count sweeps (Figures 6–7) and contention-threshold extraction.
* :mod:`repro.reveng.block_placement` — infers the block scheduler's
  round-robin + leftover placement from smid/clock records.
* :mod:`repro.reveng.warp_assignment` — infers the number of warp
  schedulers and the round-robin warp assignment from which warps slow
  down as warps are added.
"""

from repro.reveng.cache_params import (
    CacheParams,
    characterize_cache,
    infer_cache_parameters,
)
from repro.reveng.fu_latency import (
    contention_onset,
    latency_curve,
    plateau_latency,
)
from repro.reveng.block_placement import (
    PlacementReport,
    infer_block_policy,
    observe_placement,
)
from repro.reveng.warp_assignment import infer_warp_schedulers

__all__ = [
    "CacheParams",
    "PlacementReport",
    "characterize_cache",
    "contention_onset",
    "infer_block_policy",
    "infer_cache_parameters",
    "infer_warp_schedulers",
    "latency_curve",
    "observe_placement",
    "plateau_latency",
]
