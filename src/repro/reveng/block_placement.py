"""Block-scheduler reverse engineering (Section 3.1).

Launch kernels whose blocks record ``%smid`` and ``clock()`` at start
and stop, vary the number/configuration of blocks, and infer:

* single-kernel placement is round-robin over the SMs;
* a second kernel fills *leftover* capacity, again round-robin (so two
  ``n_sms``-block kernels end up co-resident pairwise);
* when nothing fits, blocks queue FIFO until an SM frees resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch.specs import GPUSpec
from repro.sim import isa
from repro.sim.gpu import Device
from repro.sim.kernel import Kernel, KernelConfig


@dataclass
class PlacementReport:
    """Findings of the placement reverse-engineering experiments."""

    round_robin: bool
    leftover_coresidency: bool
    fifo_queueing: bool
    smids_first_kernel: List[Optional[int]]
    smids_second_kernel: List[Optional[int]]


def _probe_kernel(duration: float = 2000.0):
    def body(ctx):
        # smid and clock are recorded by the runtime's block records —
        # exactly the observables the CUDA version reads explicitly.
        yield isa.Sleep(duration)
    return body


def observe_placement(spec: GPUSpec, n_blocks: int, *,
                      block_threads: int = 32,
                      shared_mem: int = 0,
                      seed: int = 0) -> List[Optional[int]]:
    """smids of one kernel's blocks, in block order."""
    device = Device(spec, seed=seed)
    kernel = Kernel(_probe_kernel(),
                    KernelConfig(grid=n_blocks,
                                 block_threads=block_threads,
                                 shared_mem=shared_mem))
    device.launch(kernel)
    device.synchronize()
    return kernel.smids()


def infer_block_policy(spec: GPUSpec, *, seed: int = 0) -> PlacementReport:
    """Run the paper's three placement experiments and report findings."""
    device = Device(spec, seed=seed)
    n = spec.n_sms

    # Experiment 1+2: two kernels, n_sms blocks each, on two streams.
    k1 = Kernel(_probe_kernel(6000.0), KernelConfig(grid=n), context=1)
    k2 = Kernel(_probe_kernel(6000.0), KernelConfig(grid=n), context=2)
    device.stream().launch(k1)
    device.stream().launch(k2)
    device.synchronize(kernels=[k1, k2])

    smids1 = k1.smids()
    smids2 = k2.smids()
    round_robin = all(smid is not None for smid in smids1) and (
        len(set(smids1)) == min(n, len(smids1))
    )
    coresident = set(smids1) == set(smids2)

    # Experiment 3: saturate shared memory, then launch a competitor —
    # its blocks must wait for the first kernel to retire.
    device2 = Device(spec, seed=seed + 1)
    blocks_to_fill = max(1, spec.shared_mem_per_sm
                         // spec.max_shared_mem_per_block)
    hog = Kernel(_probe_kernel(8000.0),
                 KernelConfig(grid=n * blocks_to_fill,
                              shared_mem=spec.max_shared_mem_per_block),
                 context=1)
    late = Kernel(_probe_kernel(1000.0),
                  KernelConfig(grid=1, shared_mem=1024), context=2)
    device2.stream().launch(hog)
    device2.stream().launch(late)
    device2.synchronize(kernels=[hog, late])
    first_hog_end = min(r.stop_cycle for r in hog.block_records)
    late_start = late.block_records[0].start_cycle
    fifo_queueing = (late_start is not None and first_hog_end is not None
                     and late_start >= first_hog_end)

    return PlacementReport(
        round_robin=round_robin,
        leftover_coresidency=coresident,
        fifo_queueing=fifo_queueing,
        smids_first_kernel=smids1,
        smids_second_kernel=smids2,
    )
