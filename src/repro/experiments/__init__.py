"""Programmatic regeneration of every figure and table.

Each function returns the plain data series behind one element of the
paper's evaluation, so users can re-plot or post-process them without
going through pytest.  The registry maps experiment ids (``fig2`` …
``table3``) to runnable entries; the CLI (``python -m repro``) exposes
them from the command line.
"""

from repro.experiments.figures import (
    fig2_data,
    fig3_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig10_data,
)
from repro.experiments.tables import table1_data, table2_data, table3_data
from repro.experiments.registry import (
    EXPERIMENTS,
    PROFILES,
    Experiment,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "PROFILES",
    "fig10_data",
    "fig2_data",
    "fig3_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "run_experiment",
    "table1_data",
    "table2_data",
    "table3_data",
]
