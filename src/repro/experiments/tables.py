"""Data behind the paper's tables."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arch import all_specs
from repro.channels import (
    L1CacheChannel,
    MultiBitL1Channel,
    ParallelSFUChannel,
    ParallelSMChannel,
    SFUChannel,
    SynchronizedL1Channel,
)
from repro.sim.gpu import Device


def table1_data() -> Dict[str, Dict[str, int]]:
    """Table 1 — per-SM execution resources, keyed by device name."""
    return {spec.name: spec.resource_table() for spec in all_specs()}


def table2_data(seed: int = 3) -> Dict[Tuple[str, str], float]:
    """Table 2 — improved L1 channel bandwidth (Kbps) per
    (generation, configuration) with configurations ``baseline``,
    ``sync``, ``multibit`` and ``parallel``."""
    out: Dict[Tuple[str, str], float] = {}
    for spec in all_specs():
        gen = spec.generation
        out[(gen, "baseline")] = L1CacheChannel(
            Device(spec, seed=seed)).transmit_random(
                48, seed=7).bandwidth_kbps
        out[(gen, "sync")] = SynchronizedL1Channel(
            Device(spec, seed=seed)).transmit_random(
                64, seed=7).bandwidth_kbps
        out[(gen, "multibit")] = MultiBitL1Channel(
            Device(spec, seed=seed), data_sets=6).transmit_random(
                96, seed=7).bandwidth_kbps
        out[(gen, "parallel")] = ParallelSMChannel(
            Device(spec, seed=seed), data_sets=6).transmit_random(
                480, seed=7).bandwidth_kbps
    return out


def table3_data(seed: int = 5) -> Dict[Tuple[str, str], float]:
    """Table 3 — SFU channel bandwidth (Kbps) per
    (generation, configuration) with configurations ``baseline``,
    ``schedulers`` and ``schedulers+SMs``."""
    out: Dict[Tuple[str, str], float] = {}
    for spec in all_specs():
        gen = spec.generation
        out[(gen, "baseline")] = SFUChannel(
            Device(spec, seed=seed)).transmit_random(
                12, seed=9).bandwidth_kbps
        out[(gen, "schedulers")] = ParallelSFUChannel(
            Device(spec, seed=seed), per_sm=False).transmit_random(
                24, seed=9).bandwidth_kbps
        bits = 4 * spec.warp_schedulers * spec.n_sms
        out[(gen, "schedulers+SMs")] = ParallelSFUChannel(
            Device(spec, seed=seed), per_sm=True).transmit_random(
                bits, seed=9).bandwidth_kbps
    return out
