"""Data behind the paper's tables.

Each function accepts an optional ``specs`` restriction (default: all
three paper devices) and a ``profile``: ``"paper"`` uses the bit counts
EXPERIMENTS.md was measured at, ``"smoke"`` shrinks them for fast
functional passes.  Bandwidth estimates are bit-count independent to
first order (launch overhead amortizes), but only the paper profile is
pinned by the golden suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.arch import GPUSpec, all_specs
from repro.channels import (
    L1CacheChannel,
    MultiBitL1Channel,
    ParallelSFUChannel,
    ParallelSMChannel,
    SFUChannel,
    SynchronizedL1Channel,
)
from repro.sim.gpu import Device

#: (baseline, sync, multibit, parallel) bit counts per profile.
_TABLE2_BITS = {"paper": (48, 64, 96, 480), "smoke": (16, 16, 48, 120)}
#: (baseline, schedulers, streams-per-SM-factor, iterations) per
#: profile.  ``iterations=None`` keeps each channel's paper-calibrated
#: count; smoke shortens the contention loops as well as the messages.
_TABLE3_BITS = {"paper": (12, 24, 4, None), "smoke": (6, 8, 1, 8)}


def _selected(specs: Optional[Sequence[GPUSpec]]):
    return specs if specs is not None else all_specs()


def table1_data(specs: Optional[Sequence[GPUSpec]] = None
                ) -> Dict[str, Dict[str, int]]:
    """Table 1 — per-SM execution resources, keyed by device name."""
    return {spec.name: spec.resource_table()
            for spec in _selected(specs)}


def table2_data(seed: int = 3,
                specs: Optional[Sequence[GPUSpec]] = None,
                profile: str = "paper"
                ) -> Dict[Tuple[str, str], float]:
    """Table 2 — improved L1 channel bandwidth (Kbps) per
    (generation, configuration) with configurations ``baseline``,
    ``sync``, ``multibit`` and ``parallel``."""
    base_bits, sync_bits, multi_bits, par_bits = _TABLE2_BITS[profile]
    out: Dict[Tuple[str, str], float] = {}
    for spec in _selected(specs):
        gen = spec.generation
        out[(gen, "baseline")] = L1CacheChannel(
            Device(spec, seed=seed)).transmit_random(
                base_bits, seed=7).bandwidth_kbps
        out[(gen, "sync")] = SynchronizedL1Channel(
            Device(spec, seed=seed)).transmit_random(
                sync_bits, seed=7).bandwidth_kbps
        out[(gen, "multibit")] = MultiBitL1Channel(
            Device(spec, seed=seed), data_sets=6).transmit_random(
                multi_bits, seed=7).bandwidth_kbps
        out[(gen, "parallel")] = ParallelSMChannel(
            Device(spec, seed=seed), data_sets=6).transmit_random(
                par_bits, seed=7).bandwidth_kbps
    return out


def table3_data(seed: int = 5,
                specs: Optional[Sequence[GPUSpec]] = None,
                profile: str = "paper"
                ) -> Dict[Tuple[str, str], float]:
    """Table 3 — SFU channel bandwidth (Kbps) per
    (generation, configuration) with configurations ``baseline``,
    ``schedulers`` and ``schedulers+SMs``."""
    base_bits, sched_bits, sm_factor, iterations = _TABLE3_BITS[profile]
    out: Dict[Tuple[str, str], float] = {}
    for spec in _selected(specs):
        gen = spec.generation
        out[(gen, "baseline")] = SFUChannel(
            Device(spec, seed=seed),
            iterations=iterations).transmit_random(
                base_bits, seed=9).bandwidth_kbps
        out[(gen, "schedulers")] = ParallelSFUChannel(
            Device(spec, seed=seed), per_sm=False,
            iterations=iterations).transmit_random(
                sched_bits, seed=9).bandwidth_kbps
        bits = sm_factor * spec.warp_schedulers * spec.n_sms
        out[(gen, "schedulers+SMs")] = ParallelSFUChannel(
            Device(spec, seed=seed), per_sm=True,
            iterations=iterations).transmit_random(
                bits, seed=9).bandwidth_kbps
    return out
