"""Data series behind the paper's figures.

Every function runs the corresponding experiment on fresh simulated
devices and returns plain Python data (lists/dicts of numbers) shaped
like the figure's axes, ready for any plotting front-end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import ber_vs_bandwidth
from repro.arch import (
    FERMI_C2075,
    GPUSpec,
    KEPLER_K40C,
    all_specs,
)
from repro.channels import (
    GlobalAtomicChannel,
    L1CacheChannel,
    L2CacheChannel,
)
from repro.reveng import characterize_cache, latency_curve
from repro.sim.gpu import Device

#: (x, y) series: x = array size or warp count, y = latency in cycles.
Series = List[Tuple[float, float]]


def fig2_data(spec: GPUSpec = KEPLER_K40C, seed: int = 0) -> Series:
    """Figure 2 — L1 constant cache latency vs array size, stride 64 B."""
    return [(float(s), lat)
            for s, lat in characterize_cache(spec, "l1", seed=seed)]


def fig3_data(spec: GPUSpec = KEPLER_K40C, seed: int = 0) -> Series:
    """Figure 3 — L2 constant cache latency vs array size, stride 256 B."""
    return [(float(s), lat)
            for s, lat in characterize_cache(spec, "l2", seed=seed)]


def fig4_data(n_bits: int = 48, seed: int = 7,
              specs: Optional[Sequence[GPUSpec]] = None
              ) -> Dict[str, Dict[str, float]]:
    """Figure 4 — error-free cache-channel bandwidth per device (Kbps)."""
    out: Dict[str, Dict[str, float]] = {"L1": {}, "L2": {}}
    for spec in (specs if specs is not None else all_specs()):
        d1 = Device(spec, seed=seed)
        out["L1"][spec.generation] = L1CacheChannel(d1)\
            .transmit_random(n_bits, seed=seed).bandwidth_kbps
        d2 = Device(spec, seed=seed)
        out["L2"][spec.generation] = L2CacheChannel(d2)\
            .transmit_random(n_bits, seed=seed).bandwidth_kbps
    return out


def fig5_data(level: str = "l1", spec: GPUSpec = KEPLER_K40C,
              iterations: Optional[Sequence[int]] = None,
              n_bits: int = 48,
              seed: int = 5,
              snapshots=None) -> List[Tuple[float, float]]:
    """Figure 5 — (bandwidth Kbps, BER) pairs from an iteration sweep.

    ``snapshots=`` (a :class:`repro.runner.cache.SnapshotStore`) makes
    each sweep point resumable across invocations.
    """
    if level == "l1":
        factory = lambda d, it: L1CacheChannel(d, iterations=it)  # noqa: E731
        iterations = iterations or [20, 12, 8, 5, 3, 2]
    elif level == "l2":
        factory = lambda d, it: L2CacheChannel(d, iterations=it)  # noqa: E731
        iterations = iterations or [8, 5, 3, 2, 1]
    else:
        raise ValueError("level must be 'l1' or 'l2'")
    points = ber_vs_bandwidth(spec, factory, iterations,
                              n_bits=n_bits, seed=seed,
                              snapshots=snapshots,
                              snapshot_tag=f"fig5/{level}")
    return [(p.bandwidth_kbps, p.ber) for p in points]


def fig6_data(warp_counts: Optional[Sequence[int]] = None,
              iterations: int = 96,
              specs: Optional[Sequence[GPUSpec]] = None
              ) -> Dict[Tuple[str, str], Series]:
    """Figure 6 — SP op latency vs warps, keyed by (generation, op)."""
    warp_counts = warp_counts or [1, 4, 8, 12, 16, 20, 24, 28, 32]
    out: Dict[Tuple[str, str], Series] = {}
    for spec in (specs if specs is not None else all_specs()):
        for op in ("sinf", "sqrt", "fadd", "fmul"):
            curve = latency_curve(spec, op, warp_counts,
                                  iterations=iterations)
            out[(spec.generation, op)] = [(float(w), lat)
                                          for w, lat in curve]
    return out


def fig7_data(warp_counts: Optional[Sequence[int]] = None,
              iterations: int = 96,
              specs: Optional[Sequence[GPUSpec]] = None
              ) -> Dict[Tuple[str, str], Optional[Series]]:
    """Figure 7 — DP op latency vs warps (Fermi and Kepler only).

    With an explicit ``specs`` list, a device without DP units maps to
    ``None`` instead of raising, mirroring the paper's "Maxwell absent
    (no DPUs)" panel and keeping grid sweeps alive.
    """
    warp_counts = warp_counts or [1, 4, 8, 12, 16, 20, 24, 28, 32]
    out: Dict[Tuple[str, str], Optional[Series]] = {}
    for spec in (specs if specs is not None
                 else (FERMI_C2075, KEPLER_K40C)):
        for op in ("dadd", "dmul"):
            if not spec.supports_op(op):
                out[(spec.generation, op)] = None
                continue
            curve = latency_curve(spec, op, warp_counts,
                                  iterations=iterations)
            out[(spec.generation, op)] = [(float(w), lat)
                                          for w, lat in curve]
    return out


def fig10_data(n_bits: int = 24, seed: Optional[int] = None,
               specs: Optional[Sequence[GPUSpec]] = None
               ) -> Dict[Tuple[str, int], float]:
    """Figure 10 — atomic channel bandwidth (Kbps) per (device, scenario).

    ``seed=None`` reproduces the paper calibration (device seeds
    ``40+scenario``, message seed 9); an explicit seed re-seeds both so
    a seed sweep exercises genuinely different runs.
    """
    out: Dict[Tuple[str, int], float] = {}
    for spec in (specs if specs is not None else all_specs()):
        for scenario in (1, 2, 3):
            device_seed = (40 if seed is None else 100 * seed) + scenario
            device = Device(spec, seed=device_seed)
            result = GlobalAtomicChannel(device, scenario=scenario)\
                .transmit_random(n_bits, seed=9 if seed is None else seed)
            out[(spec.generation, scenario)] = result.bandwidth_kbps
    return out
