"""Experiment registry: ids, descriptions and runnable entries.

Every entry accepts the same ``(spec, seed, profile)`` triple so the
sweep runner (:mod:`repro.runner`) can iterate the whole registry over
a ``(experiment x GPU x seed)`` grid:

* ``spec=None`` / ``seed=None`` reproduce the paper configuration that
  EXPERIMENTS.md documents (every device the figure covers, the
  calibrated seeds);
* an explicit spec restricts multi-device experiments to that one
  device; an explicit seed re-seeds both the simulated devices and the
  transmitted messages;
* ``profile`` selects run size: ``"paper"`` is full fidelity,
  ``"smoke"`` shrinks bit counts and sweep points for fast functional
  passes (CI, the registry-through-pool tests).

Results are plain picklable dataclasses carrying their own provenance,
so they can cross process boundaries and be replayed from the on-disk
cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.arch import GPUSpec, KEPLER_K40C
from repro.arch.specs import UnsupportedOperation
from repro.experiments import figures, tables

#: Supported run profiles, in decreasing fidelity.
PROFILES = ("paper", "smoke")


@dataclass
class ExperimentResult:
    """Uniform result of a registry run.

    Picklable by construction (plain fields, no device references), so
    it can return from pool workers and live in the result cache.
    ``provenance`` records what produced it: code version, spec
    fingerprint, seed and profile (see :func:`run_experiment`).
    """

    experiment_id: str
    description: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    spec_name: Optional[str] = None
    seed: Optional[int] = None
    profile: str = "paper"
    provenance: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Fixed-width text rendering."""
        from repro.analysis import format_table
        scope = f" [{self.spec_name}]" if self.spec_name else ""
        return format_table(self.headers, self.rows,
                            title=f"{self.experiment_id}{scope}: "
                                  f"{self.description}")


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: id, description, runnable entry."""

    experiment_id: str
    description: str
    runner: Callable[[Optional[GPUSpec], Optional[int], str],
                     ExperimentResult]


def _series_rows(series) -> List[List[Any]]:
    return [[x, round(y, 2)] for x, y in series]


def _specs_arg(spec: Optional[GPUSpec]):
    """Spec restriction for multi-device data functions."""
    return None if spec is None else [spec]


def _run_fig2(spec, seed, profile) -> ExperimentResult:
    series = figures.fig2_data(spec if spec is not None else KEPLER_K40C,
                               seed=seed if seed is not None else 0)
    return ExperimentResult(
        "fig2", "L1 constant cache latency vs array size (stride 64B)",
        ["array bytes", "latency (clk)"], _series_rows(series))


def _run_fig3(spec, seed, profile) -> ExperimentResult:
    series = figures.fig3_data(spec if spec is not None else KEPLER_K40C,
                               seed=seed if seed is not None else 0)
    return ExperimentResult(
        "fig3", "L2 constant cache latency vs array size (stride 256B)",
        ["array bytes", "latency (clk)"], _series_rows(series))


def _run_fig4(spec, seed, profile) -> ExperimentResult:
    data = figures.fig4_data(
        n_bits=12 if profile == "smoke" else 48,
        seed=seed if seed is not None else 7,
        specs=_specs_arg(spec))
    rows = [[level, gen, round(kbps, 1)]
            for level, per_gen in data.items()
            for gen, kbps in per_gen.items()]
    return ExperimentResult(
        "fig4", "cache channel bandwidth (Kbps, error-free)",
        ["level", "GPU", "Kbps"], rows)


def _run_fig5(spec, seed, profile) -> ExperimentResult:
    smoke = profile == "smoke"
    iterations = {"l1": [20, 5, 2], "l2": [8, 2]} if smoke else {}
    rows = []
    for level in ("l1", "l2"):
        points = figures.fig5_data(
            level,
            spec=spec if spec is not None else KEPLER_K40C,
            iterations=iterations.get(level),
            n_bits=16 if smoke else 48,
            seed=seed if seed is not None else 5)
        for bw, ber in points:
            rows.append([level.upper(), round(bw, 1), round(ber, 3)])
    return ExperimentResult(
        "fig5", "bit error rate vs bandwidth (iteration sweep)",
        ["channel", "Kbps", "BER"], rows)


def _run_fig6(spec, seed, profile) -> ExperimentResult:
    smoke = profile == "smoke"
    rows = []
    for (gen, op), series in figures.fig6_data(
            warp_counts=[1, 16, 32] if smoke else [1, 8, 16, 24, 32],
            iterations=48 if smoke else 96,
            specs=_specs_arg(spec)).items():
        for w, lat in series:
            rows.append([gen, op, int(w), round(lat, 1)])
    return ExperimentResult(
        "fig6", "SP op latency vs warp count",
        ["GPU", "op", "warps", "latency (clk)"], rows)


def _run_fig7(spec, seed, profile) -> ExperimentResult:
    smoke = profile == "smoke"
    rows = []
    for (gen, op), series in figures.fig7_data(
            warp_counts=[1, 16, 32] if smoke else [1, 8, 16, 24, 32],
            iterations=48 if smoke else 96,
            specs=_specs_arg(spec)).items():
        if series is None:
            # Maxwell: Table 1 lists zero DPUs, so DP ops raise
            # UnsupportedOperation — recorded, not fatal, so grid
            # sweeps over all devices survive (EXPERIMENTS.md Fig 7).
            rows.append([gen, op, "-", "unsupported"])
            continue
        for w, lat in series:
            rows.append([gen, op, int(w), round(lat, 1)])
    return ExperimentResult(
        "fig7", "DP op latency vs warp count",
        ["GPU", "op", "warps", "latency (clk)"], rows)


def _run_fig10(spec, seed, profile) -> ExperimentResult:
    rows = [[gen, f"scenario {sc}", round(kbps, 1)]
            for (gen, sc), kbps in figures.fig10_data(
                n_bits=6 if profile == "smoke" else 24,
                seed=seed,
                specs=_specs_arg(spec)).items()]
    return ExperimentResult(
        "fig10", "global atomic channel bandwidth (Kbps)",
        ["GPU", "pattern", "Kbps"], rows)


def _run_table1(spec, seed, profile) -> ExperimentResult:
    rows = []
    for name, table in tables.table1_data(
            specs=_specs_arg(spec)).items():
        rows.append([name] + list(table.values()))
    return ExperimentResult(
        "table1", "per-SM execution resources",
        ["GPU", "WS", "Dispatch", "SP", "DPU", "SFU", "LD/ST"], rows)


def _run_table2(spec, seed, profile) -> ExperimentResult:
    rows = [[gen, stage, round(kbps, 1)]
            for (gen, stage), kbps in tables.table2_data(
                seed=seed if seed is not None else 3,
                specs=_specs_arg(spec),
                profile=profile).items()]
    return ExperimentResult(
        "table2", "improved L1 channels (Kbps)",
        ["GPU", "configuration", "Kbps"], rows)


def _run_table3(spec, seed, profile) -> ExperimentResult:
    rows = [[gen, stage, round(kbps, 1)]
            for (gen, stage), kbps in tables.table3_data(
                seed=seed if seed is not None else 5,
                specs=_specs_arg(spec),
                profile=profile).items()]
    return ExperimentResult(
        "table3", "improved SFU channels (Kbps)",
        ["GPU", "configuration", "Kbps"], rows)


def _run_xdev(spec, seed, profile) -> ExperimentResult:
    """Cross-device channels on a 2-GPU fabric (beyond the paper).

    The paper's channels live inside one die; this experiment runs the
    interconnect family (link bandwidth, remote atomics) with the
    trojan on device 0 and the spy on device 1 of a two-device fabric,
    same protocol and metrics as Figure 10.
    """
    from repro.channels import LinkBandwidthChannel, RemoteAtomicChannel
    from repro.sim import Fabric
    dev_spec = spec if spec is not None else KEPLER_K40C
    base_seed = seed if seed is not None else 9
    n_bits = 8 if profile == "smoke" else 32
    rows = []
    for name, cls in (("link-bandwidth", LinkBandwidthChannel),
                      ("remote-atomic", RemoteAtomicChannel)):
        fabric = Fabric(dev_spec, seed=base_seed)
        result = cls(fabric).transmit_random(n_bits, seed=base_seed)
        rows.append([dev_spec.generation, name,
                     round(result.bandwidth_kbps, 1),
                     round(result.ber, 3)])
    return ExperimentResult(
        "xdev", "cross-device fabric channels (2 GPUs)",
        ["GPU", "channel", "Kbps", "BER"], rows)


#: Experiment id -> registered entry, in paper order.
EXPERIMENTS: Dict[str, Experiment] = {
    exp.experiment_id: exp for exp in (
        Experiment("fig2", "L1 cache latency staircase", _run_fig2),
        Experiment("fig3", "L2 cache latency staircase", _run_fig3),
        Experiment("fig4", "cache channel bandwidth", _run_fig4),
        Experiment("fig5", "BER vs bandwidth sweep", _run_fig5),
        Experiment("fig6", "SP op latency vs warps", _run_fig6),
        Experiment("fig7", "DP op latency vs warps", _run_fig7),
        Experiment("fig10", "atomic channel bandwidth", _run_fig10),
        Experiment("table1", "per-SM resources", _run_table1),
        Experiment("table2", "improved L1 channels", _run_table2),
        Experiment("table3", "improved SFU channels", _run_table3),
        Experiment("xdev", "cross-device fabric channels", _run_xdev),
    )
}


def run_experiment(experiment_id: str,
                   spec: Optional[GPUSpec] = None,
                   seed: Optional[int] = None,
                   profile: str = "paper") -> ExperimentResult:
    """Run one registered experiment by id (``fig2`` ... ``xdev``).

    With no arguments this reproduces the paper configuration exactly
    as before; ``spec``/``seed``/``profile`` select one grid cell (see
    the module docstring).  The returned result is stamped with its
    provenance so cached copies remain self-describing.
    """
    try:
        entry = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"choose from {PROFILES}")
    try:
        result = entry.runner(spec, seed, profile)
    except UnsupportedOperation as exc:
        # A spec restriction can make an experiment impossible (e.g.
        # any DP experiment on Maxwell); report it as a structured
        # result so sweeps aggregate it instead of crashing.
        result = ExperimentResult(
            experiment_id, entry.description,
            ["GPU", "note"],
            [[spec.generation if spec else "-", str(exc)]])
    result.spec_name = spec.name if spec is not None else None
    result.seed = seed
    result.profile = profile
    from repro.obs.provenance import code_version
    from repro.runner.keys import spec_fingerprint
    result.provenance = {
        "code_version": code_version(),
        "spec_fingerprint": spec_fingerprint(spec),
        "seed": seed,
        "profile": profile,
    }
    return result
