"""Experiment registry: ids, descriptions and runnable entries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.experiments import figures, tables


@dataclass
class ExperimentResult:
    """Uniform result of a registry run."""

    experiment_id: str
    description: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width text rendering."""
        from repro.analysis import format_table
        return format_table(self.headers, self.rows,
                            title=f"{self.experiment_id}: "
                                  f"{self.description}")


def _series_rows(series) -> List[List[Any]]:
    return [[x, round(y, 2)] for x, y in series]


def _run_fig2() -> ExperimentResult:
    return ExperimentResult(
        "fig2", "L1 constant cache latency vs array size (stride 64B)",
        ["array bytes", "latency (clk)"],
        _series_rows(figures.fig2_data()))


def _run_fig3() -> ExperimentResult:
    return ExperimentResult(
        "fig3", "L2 constant cache latency vs array size (stride 256B)",
        ["array bytes", "latency (clk)"],
        _series_rows(figures.fig3_data()))


def _run_fig4() -> ExperimentResult:
    data = figures.fig4_data()
    rows = [[level, gen, round(kbps, 1)]
            for level, per_gen in data.items()
            for gen, kbps in per_gen.items()]
    return ExperimentResult(
        "fig4", "cache channel bandwidth (Kbps, error-free)",
        ["level", "GPU", "Kbps"], rows)


def _run_fig5() -> ExperimentResult:
    rows = []
    for level in ("l1", "l2"):
        for bw, ber in figures.fig5_data(level):
            rows.append([level.upper(), round(bw, 1), round(ber, 3)])
    return ExperimentResult(
        "fig5", "bit error rate vs bandwidth (iteration sweep, Kepler)",
        ["channel", "Kbps", "BER"], rows)


def _run_fig6() -> ExperimentResult:
    rows = []
    for (gen, op), series in figures.fig6_data(
            warp_counts=[1, 8, 16, 24, 32]).items():
        for w, lat in series:
            rows.append([gen, op, int(w), round(lat, 1)])
    return ExperimentResult(
        "fig6", "SP op latency vs warp count",
        ["GPU", "op", "warps", "latency (clk)"], rows)


def _run_fig7() -> ExperimentResult:
    rows = []
    for (gen, op), series in figures.fig7_data(
            warp_counts=[1, 8, 16, 24, 32]).items():
        for w, lat in series:
            rows.append([gen, op, int(w), round(lat, 1)])
    return ExperimentResult(
        "fig7", "DP op latency vs warp count",
        ["GPU", "op", "warps", "latency (clk)"], rows)


def _run_fig10() -> ExperimentResult:
    rows = [[gen, f"scenario {sc}", round(kbps, 1)]
            for (gen, sc), kbps in figures.fig10_data().items()]
    return ExperimentResult(
        "fig10", "global atomic channel bandwidth (Kbps)",
        ["GPU", "pattern", "Kbps"], rows)


def _run_table1() -> ExperimentResult:
    rows = []
    for name, table in tables.table1_data().items():
        rows.append([name] + list(table.values()))
    return ExperimentResult(
        "table1", "per-SM execution resources",
        ["GPU", "WS", "Dispatch", "SP", "DPU", "SFU", "LD/ST"], rows)


def _run_table2() -> ExperimentResult:
    rows = [[gen, stage, round(kbps, 1)]
            for (gen, stage), kbps in tables.table2_data().items()]
    return ExperimentResult(
        "table2", "improved L1 channels (Kbps)",
        ["GPU", "configuration", "Kbps"], rows)


def _run_table3() -> ExperimentResult:
    rows = [[gen, stage, round(kbps, 1)]
            for (gen, stage), kbps in tables.table3_data().items()]
    return ExperimentResult(
        "table3", "improved SFU channels (Kbps)",
        ["GPU", "configuration", "Kbps"], rows)


#: Experiment id -> (description, runner).
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig10": _run_fig10,
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment by id (``fig2`` … ``table3``)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return runner()
