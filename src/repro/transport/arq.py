"""Retransmission engine: stop-and-wait / go-back-N over a covert wire.

The sender pushes a window of DATA frames through the *forward* channel,
then collects one cumulative ACK over the *reverse* channel (a second
covert channel instance with the trojan/spy roles swapped, exactly like
:class:`repro.channels.reliable.ReliableLink`).  A corrupt or missing
ACK is the covert-channel analogue of a timeout: the sender goes back
to the first unacknowledged frame and resends the window.  Retries per
window position are bounded; exhausting them aborts the session rather
than spinning forever on a dead wire.

``window=1`` degenerates to classic stop-and-wait; larger windows
amortize the (expensive — each ACK is a kernel-launch round) reverse
traffic across several data frames.

Both directions are host-orchestrated.  The *receiver* half is a real
state machine (:class:`Receiver`) fed only wire bits, so the same code
decodes a live session and replays a capture file (``repro recv``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.channels.base import CovertChannel
from repro.transport.framing import (
    ACK,
    DATA,
    MAX_SEQ,
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ArqSender",
    "ArqStats",
    "FrameOutcome",
    "Receiver",
    "WireTally",
]


@dataclass
class FrameOutcome:
    """One transmission attempt, as recorded into the run manifest."""

    index: int            #: position in the session's frame order
    kind: str             #: DATA / ACK / SYN / SYNACK
    stream: int
    seq: int
    attempt: int          #: 0 for the first transmission of this frame
    status: str           #: delivered | duplicate | corrupt | out-of-order
    wire_bits: int        #: bits on the wire for this transmission
    bit_errors: int       #: flips observed end-to-end (god's-eye view)
    start_cycle: float
    end_cycle: float

    def to_payload(self) -> Dict[str, Any]:
        """Plain-JSON form for the run manifest."""
        return {
            "index": self.index, "kind": self.kind,
            "stream": self.stream, "seq": self.seq,
            "attempt": self.attempt, "status": self.status,
            "wire_bits": self.wire_bits, "bit_errors": self.bit_errors,
            "cycles": round(self.end_cycle - self.start_cycle, 3),
        }


class WireTally:
    """Aggregate wire statistics across every transmission of a session.

    Collects totals (transmissions, bits, flips), the forward-direction
    wire capture for ``repro recv`` replay, and the ground-truth-tagged
    signal samples each :class:`~repro.channels.base.ChannelResult`
    carries on an observed device, so session-level quality reporting
    reuses :func:`repro.obs.quality.channel_quality` unchanged.
    """

    def __init__(self) -> None:
        self.transmissions = 0
        self.wire_bits = 0
        self.bit_errors = 0
        self.sent_bits: List[int] = []
        self.received_bits: List[int] = []
        self.signal_samples: List[Any] = []
        self.capture: List[Dict[str, Any]] = []

    def record(self, result: Any, *, direction: str, kind: str) -> None:
        """Fold one channel transmission into the totals."""
        self.transmissions += 1
        self.wire_bits += result.n_bits
        self.bit_errors += result.errors
        if direction == "fwd":
            self.sent_bits.extend(result.sent)
            self.received_bits.extend(result.received)
            self.capture.append({
                "kind": kind,
                "bits": "".join(str(int(b)) for b in result.received),
            })
        samples = result.meta.get("signal_samples")
        if samples:
            self.signal_samples.extend(samples)

    @property
    def wire_ber(self) -> float:
        """Raw bit error rate over everything that crossed the wire."""
        return self.bit_errors / self.wire_bits if self.wire_bits else 0.0


class Receiver:
    """Go-back-N receiver: in-order accept, cumulative ACK, demux.

    Fed nothing but wire bits, it tracks the next expected
    session-global sequence number, appends in-order DATA payloads to
    per-stream buffers and discards duplicates (a retransmission whose
    original ACK was lost) and out-of-order arrivals (go-back-N keeps
    no reorder buffer).  ``ack_frame()`` is the cumulative
    acknowledgement the receiving application sends back.
    """

    def __init__(self, *, ecc: bool = False) -> None:
        self.ecc = ecc
        self.next_seq = 0
        self.streams: Dict[int, bytearray] = {}
        self.frames_delivered = 0

    def accept(self, wire: Any) -> Tuple[str, Optional[Frame]]:
        """Consume one received frame; returns ``(status, frame)``.

        ``status`` is ``delivered`` / ``duplicate`` / ``out-of-order``
        / ``corrupt``; ``frame`` is ``None`` exactly when corrupt.
        Control frames (non-DATA) parse but do not advance the window.
        """
        try:
            frame = decode_frame(wire, ecc=self.ecc)
        except FrameError:
            return "corrupt", None
        if frame.ftype != DATA:
            return "control", frame
        behind = (self.next_seq - frame.seq) % MAX_SEQ
        if frame.seq == self.next_seq:
            self.streams.setdefault(frame.stream,
                                    bytearray()).extend(frame.payload)
            self.next_seq = (self.next_seq + 1) % MAX_SEQ
            self.frames_delivered += 1
            return "delivered", frame
        if 0 < behind <= MAX_SEQ // 2:
            return "duplicate", frame
        return "out-of-order", frame

    def ack_frame(self) -> Frame:
        """Cumulative ACK: carries the next expected sequence number."""
        return Frame(ftype=ACK, stream=0, seq=self.next_seq)

    def payloads(self) -> Dict[int, bytes]:
        """Reassembled per-stream byte strings, keyed by stream id."""
        return {sid: bytes(buf) for sid, buf in self.streams.items()}


@dataclass
class ArqStats:
    """Delivery totals for one :meth:`ArqSender.run`."""

    data_frames: int = 0
    data_transmissions: int = 0
    retransmissions: int = 0
    corrupt_receptions: int = 0
    ack_transmissions: int = 0
    ack_failures: int = 0
    aborted: bool = False
    abort_reason: str = ""
    outcomes: List[FrameOutcome] = field(default_factory=list)

    @property
    def frame_loss(self) -> float:
        """Fraction of data-frame transmissions that did not deliver."""
        if not self.data_transmissions:
            return 0.0
        lost = sum(1 for o in self.outcomes
                   if o.kind == "DATA" and o.status != "delivered")
        return lost / self.data_transmissions


class ArqSender:
    """Windowed reliable delivery of a frame list to a :class:`Receiver`."""

    def __init__(self, forward: CovertChannel,
                 reverse: Optional[CovertChannel] = None, *,
                 ecc: bool = False, window: int = 4,
                 max_retries: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if window >= MAX_SEQ // 2:
            raise ValueError(
                f"window must stay below {MAX_SEQ // 2} so 8-bit "
                f"sequence numbers stay unambiguous")
        if max_retries < 1:
            raise ValueError("need at least one delivery attempt")
        self.forward = forward
        self.reverse = reverse
        self.ecc = ecc
        self.window = window
        self.max_retries = max_retries

    # ------------------------------------------------------------------
    def _collect_ack(self, receiver: Receiver,
                     tally: WireTally) -> Optional[int]:
        """Ship the receiver's cumulative ACK back; None on corruption.

        Without a reverse channel the sender is assumed to learn the
        receiver's state perfectly (the blind-feedback degenerate mode
        :class:`~repro.channels.reliable.ReliableLink` also supports).
        """
        if self.reverse is None:
            return receiver.next_seq
        wire = encode_frame(receiver.ack_frame(), ecc=self.ecc)
        result = self.reverse.transmit(wire)
        tally.record(result, direction="rev", kind="ACK")
        try:
            frame = decode_frame(result.received, ecc=self.ecc)
        except FrameError:
            return None
        if frame.ftype != ACK:
            return None
        return frame.seq

    # ------------------------------------------------------------------
    def run(self, frames: List[Frame], receiver: Receiver,
            tally: WireTally) -> ArqStats:
        """Deliver ``frames`` in order; go-back-N on loss; bounded."""
        stats = ArqStats(data_frames=len(frames))
        attempts = [0] * len(frames)
        base = 0
        stalls_at_base = 0
        device = self.forward.device
        while base < len(frames):
            burst = frames[base:base + self.window]
            for offset, frame in enumerate(burst):
                index = base + offset
                wire = encode_frame(frame, ecc=self.ecc)
                start = device.now
                result = self.forward.transmit(wire)
                tally.record(result, direction="fwd", kind=frame.kind)
                status, _ = receiver.accept(result.received)
                stats.data_transmissions += 1
                if attempts[index]:
                    stats.retransmissions += 1
                if status == "corrupt":
                    stats.corrupt_receptions += 1
                stats.outcomes.append(FrameOutcome(
                    index=index, kind=frame.kind, stream=frame.stream,
                    seq=frame.seq, attempt=attempts[index],
                    status=status, wire_bits=result.n_bits,
                    bit_errors=result.errors, start_cycle=start,
                    end_cycle=device.now))
                attempts[index] += 1
            acked = self._collect_ack(receiver, tally)
            stats.ack_transmissions += 1 if self.reverse is not None else 0
            if acked is None:
                stats.ack_failures += 1
                advance = 0
            else:
                advance = min((acked - frames[base].seq) % MAX_SEQ,
                              len(burst))
            if advance == 0:
                stalls_at_base += 1
                if stalls_at_base >= self.max_retries:
                    stats.aborted = True
                    stats.abort_reason = (
                        f"frame {base} (seq {frames[base].seq}) "
                        f"undelivered after {self.max_retries} "
                        f"window attempts")
                    break
            else:
                base += advance
                stalls_at_base = 0
        return stats
