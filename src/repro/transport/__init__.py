"""Covert transport stack: real payloads end-to-end over any channel.

Layered like the Demaratus exemplar (raw channel → framing → protocol →
application) above :mod:`repro.channels`:

* :mod:`~repro.transport.framing` — sequenced, CRC-8-checked frames,
  optional Hamming ECC;
* :mod:`~repro.transport.handshake` — bounded Fig.-11-style session
  establishment;
* :mod:`~repro.transport.arq` — stop-and-wait / go-back-N delivery;
* :mod:`~repro.transport.session` — multiplexed streams, goodput/BER
  accounting, manifest + capture serialization;
* :mod:`~repro.transport.testing` — deterministic loopback and
  noise-injection wrappers for the property/fuzz harness.

CLI: ``repro send <file>`` / ``repro recv <capture>``.
"""

from repro.transport.arq import (
    ArqSender,
    ArqStats,
    FrameOutcome,
    Receiver,
    WireTally,
)
from repro.transport.framing import (
    ACK,
    DATA,
    SYN,
    SYNACK,
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
    frame_bits_on_wire,
)
from repro.transport.handshake import (
    HandshakeError,
    SessionParams,
    TransportError,
    perform_handshake,
)
from repro.transport.session import (
    CAPTURE_KIND,
    CAPTURE_VERSION,
    SessionResult,
    StreamReport,
    TransportSession,
    decode_capture,
)
from repro.transport.testing import LoopbackChannel, NoisyChannel

__all__ = [
    "ACK",
    "ArqSender",
    "ArqStats",
    "CAPTURE_KIND",
    "CAPTURE_VERSION",
    "DATA",
    "Frame",
    "FrameError",
    "FrameOutcome",
    "HandshakeError",
    "LoopbackChannel",
    "NoisyChannel",
    "Receiver",
    "SYN",
    "SYNACK",
    "SessionParams",
    "SessionResult",
    "StreamReport",
    "TransportError",
    "TransportSession",
    "WireTally",
    "decode_capture",
    "decode_frame",
    "encode_frame",
    "frame_bits_on_wire",
    "perform_handshake",
]
