"""The covert transport session: payloads end-to-end over one channel.

This is the top of the stack the ROADMAP's item 4 calls for, layered
like the Demaratus "Covert Python" exemplar (raw channel → framing →
protocol → application):

* :mod:`repro.transport.framing` — frames with sequence numbers and
  CRC-8, optionally Hamming(7,4)+interleaving from :mod:`repro.noise.ecc`;
* :mod:`repro.transport.handshake` — Fig.-11-style SYN/SYNACK session
  establishment with bounded retries;
* :mod:`repro.transport.arq` — stop-and-wait / go-back-N retransmission;
* this module — **multiplexed logical streams** over one physical
  channel, chunking byte payloads into frames, round-robin interleaving
  streams, demuxing on the far side, and accounting: goodput, wire BER,
  frame loss, per-frame outcomes for the run manifest, and a capture
  record that ``repro recv`` can replay through the same
  :class:`~repro.transport.arq.Receiver` state machine.

A session is host-orchestrated over any
:class:`~repro.channels.base.CovertChannel` — every channel family ×
architecture in the repo becomes a file-transfer scenario harness.
Sessions run long simulations (a 1 KiB file is ~10k wire bits), which
is exactly the workload the fast engine (PR 3) and snapshot reuse
(PR 4) made cheap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.channels.base import ChannelResult, CovertChannel
from repro.transport.arq import (
    ArqSender,
    ArqStats,
    FrameOutcome,
    Receiver,
    WireTally,
)
from repro.transport.framing import (
    DATA,
    MAX_SEQ,
    MAX_STREAMS,
    Frame,
)
from repro.transport.handshake import (
    SessionParams,
    perform_handshake,
)

__all__ = [
    "CAPTURE_KIND",
    "CAPTURE_VERSION",
    "SessionResult",
    "StreamReport",
    "TransportSession",
    "decode_capture",
]

CAPTURE_KIND = "repro-transfer-capture"
CAPTURE_VERSION = 1

Payloads = Union[bytes, Mapping[str, bytes]]


@dataclass
class StreamReport:
    """One logical stream's ground truth vs what the receiver rebuilt."""

    stream: int
    name: str
    sent: bytes
    delivered: bytes

    @property
    def ok(self) -> bool:
        """Bit-exact delivery."""
        return self.sent == self.delivered

    @property
    def payload_errors(self) -> int:
        """Differing bits between sent and delivered payloads."""
        errors = 8 * abs(len(self.sent) - len(self.delivered))
        for a, b in zip(self.sent, self.delivered):
            errors += bin(a ^ b).count("1")
        return errors

    def to_payload(self) -> Dict[str, Any]:
        return {
            "stream": self.stream, "name": self.name,
            "sent_bytes": len(self.sent),
            "delivered_bytes": len(self.delivered),
            "bit_exact": self.ok,
            "payload_bit_errors": self.payload_errors,
            "sha256": hashlib.sha256(self.sent).hexdigest(),
        }


@dataclass
class SessionResult:
    """Everything one transfer session produced, manifest-serializable."""

    channel: str
    params: SessionParams
    streams: List[StreamReport]
    stats: ArqStats
    handshake_attempts: int
    elapsed_cycles: float
    clock_hz: float
    wire_transmissions: int
    wire_bits: int
    wire_bit_errors: int
    capture: List[Dict[str, Any]] = field(default_factory=list)
    quality: Optional[Dict[str, Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- derived -------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Every stream delivered bit-exact and the link never aborted."""
        return (not self.stats.aborted
                and all(s.ok for s in self.streams))

    @property
    def aborted(self) -> bool:
        return self.stats.aborted

    @property
    def outcomes(self) -> List[FrameOutcome]:
        return self.stats.outcomes

    @property
    def payload_bytes(self) -> int:
        return sum(len(s.sent) for s in self.streams)

    @property
    def delivered_bytes(self) -> int:
        return sum(len(s.delivered) for s in self.streams)

    @property
    def seconds(self) -> float:
        """Wall-clock duration on the simulated device."""
        return (self.elapsed_cycles / self.clock_hz
                if self.clock_hz else 0.0)

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second, all overheads included."""
        if self.seconds <= 0:
            return 0.0
        return 8 * self.delivered_bytes / self.seconds

    @property
    def wire_ber(self) -> float:
        """Raw channel BER over every transmission of the session."""
        return (self.wire_bit_errors / self.wire_bits
                if self.wire_bits else 0.0)

    @property
    def payload_ber(self) -> float:
        """Residual post-ARQ error rate at the payload level."""
        bits = 8 * self.payload_bytes
        if not bits:
            return 0.0
        return sum(s.payload_errors for s in self.streams) / bits

    @property
    def efficiency(self) -> float:
        """Delivered payload bits per wire bit (protocol efficiency)."""
        if not self.wire_bits:
            return 0.0
        return 8 * self.delivered_bytes / self.wire_bits

    # -- serialization -------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Manifest section: the per-frame log plus end-to-end numbers."""
        payload: Dict[str, Any] = {
            "channel": self.channel,
            "params": {
                "frame_bytes": self.params.frame_bytes,
                "window": self.params.window,
                "ecc": self.params.ecc,
            },
            "ok": self.ok,
            "aborted": self.stats.aborted,
            "abort_reason": self.stats.abort_reason,
            "handshake_attempts": self.handshake_attempts,
            "payload_bytes": self.payload_bytes,
            "delivered_bytes": self.delivered_bytes,
            "elapsed_cycles": round(self.elapsed_cycles, 3),
            "seconds": self.seconds,
            "goodput_bps": self.goodput_bps,
            "wire_ber": self.wire_ber,
            "payload_ber": self.payload_ber,
            "efficiency": self.efficiency,
            "frame_loss": self.stats.frame_loss,
            "data_frames": self.stats.data_frames,
            "data_transmissions": self.stats.data_transmissions,
            "retransmissions": self.stats.retransmissions,
            "ack_transmissions": self.stats.ack_transmissions,
            "ack_failures": self.stats.ack_failures,
            "wire_transmissions": self.wire_transmissions,
            "wire_bits": self.wire_bits,
            "streams": [s.to_payload() for s in self.streams],
            "frames": [o.to_payload() for o in self.stats.outcomes],
        }
        if self.quality is not None:
            payload["quality"] = self.quality
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    def capture_payload(self) -> Dict[str, Any]:
        """Self-contained capture document for ``repro recv`` replay."""
        return {
            "kind": CAPTURE_KIND,
            "version": CAPTURE_VERSION,
            "channel": self.channel,
            "params": {
                "frame_bytes": self.params.frame_bytes,
                "window": self.params.window,
                "ecc": self.params.ecc,
            },
            "streams": {
                str(s.stream): {
                    "name": s.name,
                    "bytes": len(s.sent),
                    "sha256": hashlib.sha256(s.sent).hexdigest(),
                }
                for s in self.streams
            },
            "frames": self.capture,
            "meta": dict(self.meta),
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        status = "ok" if self.ok else (
            "ABORTED" if self.aborted else "CORRUPT")
        return (f"{self.channel}: {self.payload_bytes}B in "
                f"{len(self.streams)} stream(s), "
                f"{self.goodput_bps / 1e3:.2f} Kbps goodput, "
                f"wire BER {self.wire_ber:.4f}, "
                f"{self.stats.retransmissions} retx, {status}")


class TransportSession:
    """Ship byte payloads over a covert channel, reliably, multiplexed."""

    def __init__(self, forward: CovertChannel,
                 reverse: Optional[CovertChannel] = None, *,
                 params: Optional[SessionParams] = None,
                 max_retries: int = 8,
                 handshake_retries: int = 4) -> None:
        self.forward = forward
        self.reverse = reverse
        self.params = params or SessionParams()
        self.max_retries = max_retries
        self.handshake_retries = handshake_retries

    # ------------------------------------------------------------------
    def _normalize(self, payloads: Payloads) -> List[Tuple[str, bytes]]:
        if isinstance(payloads, (bytes, bytearray)):
            items = [("payload", bytes(payloads))]
        else:
            items = [(str(name), bytes(data))
                     for name, data in payloads.items()]
        if not items:
            raise ValueError("nothing to send")
        if len(items) > MAX_STREAMS:
            raise ValueError(
                f"at most {MAX_STREAMS} concurrent streams "
                f"(got {len(items)})")
        for name, data in items:
            if not data:
                raise ValueError(f"stream {name!r} is empty")
        return items

    def _mux(self, items: List[Tuple[str, bytes]]) -> List[Frame]:
        """Chunk every stream and round-robin interleave the chunks.

        Interleaving (rather than sending streams back to back) is what
        makes the streams *concurrent*: a slow bulk stream cannot starve
        a small control stream of wire time.
        """
        size = self.params.frame_bytes
        queues = [[data[i:i + size] for i in range(0, len(data), size)]
                  for _, data in items]
        frames: List[Frame] = []
        seq = 0
        cursor = 0
        while any(queues):
            sid = cursor % len(queues)
            cursor += 1
            if not queues[sid]:
                continue
            chunk = queues[sid].pop(0)
            frames.append(Frame(ftype=DATA, stream=sid,
                                seq=seq % MAX_SEQ, payload=chunk))
            seq += 1
        return frames

    # ------------------------------------------------------------------
    def send(self, payloads: Payloads) -> SessionResult:
        """Transfer ``payloads`` (bytes, or name → bytes per stream).

        Raises :class:`~repro.transport.handshake.HandshakeError` when
        the session cannot even be established; delivery trouble after
        that is reported in the result (``aborted``/``ok``), mirroring
        :class:`~repro.channels.reliable.ReliableLink`.
        """
        items = self._normalize(payloads)
        device = self.forward.device
        tally = WireTally()
        start = device.now
        attempts = perform_handshake(
            self.forward, self.reverse, self.params,
            retries=self.handshake_retries, tally=tally)
        frames = self._mux(items)
        receiver = Receiver(ecc=self.params.ecc)
        sender = ArqSender(self.forward, self.reverse,
                           ecc=self.params.ecc,
                           window=self.params.window,
                           max_retries=self.max_retries)
        stats = sender.run(frames, receiver, tally)
        rebuilt = receiver.payloads()
        streams = [StreamReport(stream=sid, name=name, sent=data,
                                delivered=rebuilt.get(sid, b""))
                   for sid, (name, data) in enumerate(items)]
        result = SessionResult(
            channel=self.forward.name,
            params=self.params,
            streams=streams,
            stats=stats,
            handshake_attempts=attempts,
            elapsed_cycles=device.now - start,
            clock_hz=device.spec.clock_hz,
            wire_transmissions=tally.transmissions,
            wire_bits=tally.wire_bits,
            wire_bit_errors=tally.bit_errors,
            capture=tally.capture,
        )
        result.quality = self._session_quality(tally, result, start,
                                               device.now)
        return result

    def _session_quality(self, tally: WireTally, result: SessionResult,
                         start: float, end: float
                         ) -> Optional[Dict[str, Any]]:
        """Session-level signal quality via the channel observatory.

        On an observed device every frame's
        :class:`~repro.channels.base.ChannelResult` carried
        ground-truth-tagged spy latencies; aggregating them into one
        synthetic whole-session result lets
        :func:`repro.obs.quality.channel_quality` analyze the transfer
        exactly like a single long transmission.
        """
        if not tally.signal_samples:
            return None
        from repro.obs.quality import channel_quality
        aggregate = ChannelResult(
            sent=tally.sent_bits,
            received=tally.received_bits,
            start_cycle=start,
            end_cycle=end,
            clock_hz=result.clock_hz,
            channel=f"{self.forward.name} (session)",
            meta={"signal_samples": tally.signal_samples},
        )
        return channel_quality(aggregate).to_dict()


# ----------------------------------------------------------------------
# Capture replay (the `repro recv` decoder)
# ----------------------------------------------------------------------
def decode_capture(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Replay a capture document through the receiver state machine.

    Returns ``{"streams": {name: bytes}, "verified": {name: bool},
    "frames_delivered": int, "frames_rejected": int}``.  ``verified``
    compares each rebuilt stream against the sender-side SHA-256 the
    capture records — the receiver's own proof of bit-exactness.

    Raises :class:`ValueError` on documents that are not captures.
    """
    if not isinstance(doc, dict) or doc.get("kind") != CAPTURE_KIND:
        raise ValueError("not a repro-transfer-capture document")
    version = doc.get("version")
    if not isinstance(version, int) or version > CAPTURE_VERSION:
        raise ValueError(f"capture version {version!r} is newer than "
                         f"this decoder ({CAPTURE_VERSION})")
    params = doc.get("params", {})
    receiver = Receiver(ecc=bool(params.get("ecc", False)))
    rejected = 0
    for record in doc.get("frames", []):
        bits = [1 if c == "1" else 0 for c in record.get("bits", "")]
        status, _ = receiver.accept(bits)
        if status == "corrupt":
            rejected += 1
    rebuilt = receiver.payloads()
    streams: Dict[str, bytes] = {}
    verified: Dict[str, bool] = {}
    for sid_text, info in doc.get("streams", {}).items():
        sid = int(sid_text)
        name = info.get("name", f"stream{sid}")
        data = rebuilt.get(sid, b"")[:int(info.get("bytes", 0))]
        streams[name] = data
        expected = info.get("sha256")
        verified[name] = (
            expected is not None
            and hashlib.sha256(data).hexdigest() == expected
            and len(data) == int(info.get("bytes", 0)))
    return {
        "streams": streams,
        "verified": verified,
        "frames_delivered": receiver.frames_delivered,
        "frames_rejected": rejected,
    }
