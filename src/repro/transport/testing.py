"""Deterministic channel fixtures for exercising the transport stack.

Real channels pay kernel-launch simulation for every frame; protocol
logic does not need that to be tested.  Two wrappers keep the full
:class:`~repro.channels.base.CovertChannel` contract (device clock
advances, results carry signal samples on observed devices) while
making corruption *programmable*:

* :class:`LoopbackChannel` — a perfect wire with a fixed per-bit cost,
  for protocol-logic and goodput-math tests.
* :class:`NoisyChannel` — wraps any channel and flips or drops received
  bits from a seeded RNG at configurable rates, so retransmission
  convergence and BER accounting are testable bit-for-bit
  reproducibly.  Dropped bits are *deleted* (the stream shortens), the
  nastier failure mode: it breaks frame alignment, which the parser
  must reject rather than crash on.

Both are also available to the CLI (``repro send --noise-flip ...``)
for demo transfers over adversarial wires.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.channels.base import Bits, ChannelResult, CovertChannel
from repro.sim.gpu import Device

__all__ = ["LoopbackChannel", "NoisyChannel"]


class LoopbackChannel(CovertChannel):
    """A perfect bit pipe with deterministic timing.

    Each bit costs ``cycles_per_bit`` device cycles (advanced via
    ``host_wait`` so ``device.now`` moves like a real transmission) and
    is echoed back unchanged.  On an observed device, synthetic spy
    latencies (``latency0``/``latency1`` per bit class) feed the
    quality observatory so dashboards render for loopback sessions too.
    """

    def __init__(self, device: Device, *, cycles_per_bit: float = 100.0,
                 latency0: float = 49.0, latency1: float = 112.0,
                 name: str = "loopback") -> None:
        super().__init__(device, name)
        if cycles_per_bit <= 0:
            raise ValueError("cycles_per_bit must be positive")
        self.cycles_per_bit = cycles_per_bit
        self.latency0 = latency0
        self.latency1 = latency1

    def transmit(self, bits: Bits) -> ChannelResult:
        bits = [int(b) for b in bits]
        start = self.device.now
        self.device.host_wait(self.cycles_per_bit * max(len(bits), 1))
        latencies = [self.latency1 if b else self.latency0 for b in bits]
        return self._result(bits, list(bits), start,
                            bit_latencies=latencies)


class NoisyChannel(CovertChannel):
    """Seeded bit-flip / bit-drop corruption over any covert channel.

    ``flip_rate`` is the per-bit probability a received bit inverts;
    ``drop_rate`` the per-bit probability it is deleted outright.  The
    RNG is owned by the wrapper, so a given (seed, call sequence) is
    fully reproducible regardless of what the inner channel does.
    """

    def __init__(self, inner: CovertChannel, *, flip_rate: float = 0.0,
                 drop_rate: float = 0.0, seed: int = 0,
                 name: Optional[str] = None) -> None:
        for label, rate in (("flip_rate", flip_rate),
                            ("drop_rate", drop_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        super().__init__(inner.device, name or f"noisy({inner.name})")
        self.inner = inner
        self.flip_rate = flip_rate
        self.drop_rate = drop_rate
        self._rng = np.random.default_rng(seed)

    def transmit(self, bits: Bits, **kwargs) -> ChannelResult:
        result = self.inner.transmit(bits, **kwargs)
        received: List[int] = []
        flips = drops = 0
        for bit in result.received:
            if self.drop_rate and self._rng.random() < self.drop_rate:
                drops += 1
                continue
            if self.flip_rate and self._rng.random() < self.flip_rate:
                bit = 1 - int(bit)
                flips += 1
            received.append(int(bit))
        meta = dict(result.meta)
        meta["noise_flips"] = meta.get("noise_flips", 0) + flips
        meta["noise_drops"] = meta.get("noise_drops", 0) + drops
        return ChannelResult(
            sent=list(result.sent),
            received=received,
            start_cycle=result.start_cycle,
            end_cycle=result.end_cycle,
            clock_hz=result.clock_hz,
            channel=self.name,
            meta=meta,
        )
