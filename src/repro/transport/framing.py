"""Wire framing for the covert transport stack.

The session layer (:mod:`repro.transport.session`) ships byte payloads
over channels that only move raw bits.  This module defines the frame —
the unit of retransmission — and a decoder hardened against everything
a noisy covert channel does to bits in flight: flips, truncation,
reordering, or an entirely dead wire reading as all-zeros.

Frame layout (MSB-first bits)::

    +----------+---------+-------+--------+-------+-------+---------+-------+
    | preamble | version | type  | stream | seq   | len   | payload | crc8  |
    | 8 bits   | 2 bits  | 2 bits| 4 bits | 8 bits| 8 bits| len*8   | 8 bits|
    +----------+---------+-------+--------+-------+-------+---------+-------+

* ``preamble`` — fixed ``0xA5`` marker.  Without it an idle channel
  (all-zero wire) could parse as a valid empty frame, since the CRC-8
  of all-zero bits is zero.
* ``type`` — DATA / ACK / SYN / SYNACK control discrimination.
* ``stream`` — logical stream id, the multiplexing key (16 streams).
* ``seq`` — session-global sequence number modulo 256; the ARQ layer's
  window is far smaller than half that, so wrap is unambiguous.
* ``len`` — payload length in bytes (0..255).
* ``crc8`` — CRC-8/ATM over everything after the preamble.

With ECC enabled the body (everything after the preamble) is
Hamming(7,4)-encoded and block-interleaved (:mod:`repro.noise.ecc`), so
every codeword corrects one flip and bursts spread across codewords.
Both ends agree on ECC out-of-band (it is a session parameter carried
by the SYN frame).

The decoder never raises anything but :class:`FrameError`; arbitrary
garbage must be *rejected*, not crash the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.channels.base import bits_from_bytes, bytes_from_bits
from repro.noise.ecc import (
    crc8,
    crc8_check,
    deinterleave,
    hamming74_decode,
    hamming74_encode,
    interleave,
)

__all__ = [
    "ACK",
    "DATA",
    "FRAME_TYPES",
    "Frame",
    "FrameError",
    "MAX_PAYLOAD_BYTES",
    "MAX_SEQ",
    "MAX_STREAMS",
    "PREAMBLE",
    "SYN",
    "SYNACK",
    "decode_frame",
    "encode_frame",
    "frame_bits_on_wire",
]

#: Fixed frame marker (0xA5: alternating-ish, never all-zero/all-one).
PREAMBLE: List[int] = [1, 0, 1, 0, 0, 1, 0, 1]

#: Wire format version carried by every frame.
VERSION = 1

# Frame types (2 bits).
DATA = 0
ACK = 1
SYN = 2
SYNACK = 3
FRAME_TYPES = {DATA: "DATA", ACK: "ACK", SYN: "SYN", SYNACK: "SYNACK"}

MAX_STREAMS = 16
MAX_SEQ = 256
MAX_PAYLOAD_BYTES = 255

#: Header bits after the preamble, excluding payload and CRC.
_HEADER_BITS = 2 + 2 + 4 + 8 + 8
_CRC_BITS = 8

#: Interleave depth for the ECC path: one codeword per column, so a
#: burst shorter than the body/7 spreads one flip per codeword.
_ECC_DEPTH = 7


class FrameError(ValueError):
    """A bit string that is not a well-formed frame (reject, don't crash)."""


@dataclass(frozen=True)
class Frame:
    """One unit of transmission: typed, sequenced, stream-tagged bytes."""

    ftype: int
    stream: int
    seq: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.ftype not in FRAME_TYPES:
            raise ValueError(f"unknown frame type {self.ftype}")
        if not 0 <= self.stream < MAX_STREAMS:
            raise ValueError(f"stream id must be in [0, {MAX_STREAMS})")
        if not 0 <= self.seq < MAX_SEQ:
            raise ValueError(f"seq must be in [0, {MAX_SEQ})")
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload is {len(self.payload)}B; frames carry at most "
                f"{MAX_PAYLOAD_BYTES}B — chunk at the session layer")

    @property
    def kind(self) -> str:
        """Human-readable frame type."""
        return FRAME_TYPES[self.ftype]


def _int_bits(value: int, width: int) -> List[int]:
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def _bits_int(bits: Sequence[int]) -> int:
    value = 0
    for b in bits:
        value = (value << 1) | (1 if b else 0)
    return value


def encode_frame(frame: Frame, *, ecc: bool = False) -> List[int]:
    """Serialize a frame to wire bits (optionally Hamming-protected)."""
    body = (_int_bits(VERSION, 2) + _int_bits(frame.ftype, 2)
            + _int_bits(frame.stream, 4) + _int_bits(frame.seq, 8)
            + _int_bits(len(frame.payload), 8)
            + bits_from_bytes(frame.payload))
    body += crc8(body)
    if ecc:
        body = interleave(hamming74_encode(body), _ECC_DEPTH)
    return PREAMBLE + body


def frame_bits_on_wire(payload_bytes: int, *, ecc: bool = False) -> int:
    """Wire length of a DATA frame carrying ``payload_bytes`` bytes."""
    body = _HEADER_BITS + 8 * payload_bytes + _CRC_BITS
    if ecc:
        # Hamming pads to a multiple of 4 data bits, 7 wire bits each;
        # the interleaver pads to a multiple of its depth.
        words = (body + 3) // 4
        coded = 7 * words
        coded += (-coded) % _ECC_DEPTH
        body = coded
    return len(PREAMBLE) + body


def decode_frame(bits: Sequence[int], *, ecc: bool = False) -> Frame:
    """Parse wire bits back into a :class:`Frame`.

    Raises :class:`FrameError` on any malformation — short/truncated
    input, missing preamble, wrong version, bad length field, CRC
    mismatch.  Arbitrary input never raises anything else.
    """
    bits = [1 if b else 0 for b in bits]
    if len(bits) < len(PREAMBLE):
        raise FrameError(f"frame shorter than the preamble "
                         f"({len(bits)} bits)")
    if bits[:len(PREAMBLE)] != PREAMBLE:
        raise FrameError("preamble mismatch (garbage or dead wire)")
    body = bits[len(PREAMBLE):]
    if ecc:
        if len(body) % _ECC_DEPTH:
            raise FrameError("ECC body length is not a codeword multiple")
        deinterleaved = deinterleave(body, _ECC_DEPTH)
        # The interleaver pads with zeros to a depth multiple; drop the
        # pad down to whole codewords before decoding.
        whole = 7 * (len(deinterleaved) // 7)
        body = hamming74_decode(deinterleaved[:whole])
    if len(body) < _HEADER_BITS + _CRC_BITS:
        raise FrameError(f"truncated header ({len(body)} body bits)")
    version = _bits_int(body[0:2])
    if version != VERSION:
        raise FrameError(f"unsupported frame version {version}")
    ftype = _bits_int(body[2:4])
    stream = _bits_int(body[4:8])
    seq = _bits_int(body[8:16])
    length = _bits_int(body[16:24])
    end = _HEADER_BITS + 8 * length
    if len(body) < end + _CRC_BITS:
        raise FrameError(
            f"length field claims {length}B payload but only "
            f"{len(body) - _HEADER_BITS - _CRC_BITS} payload bits arrived")
    if not crc8_check(body[:end], body[end:end + _CRC_BITS]):
        raise FrameError("CRC-8 mismatch")
    payload = bytes_from_bits(body[_HEADER_BITS:end]) if length else b""
    return Frame(ftype=ftype, stream=stream, seq=seq, payload=payload)
