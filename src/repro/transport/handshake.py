"""Session establishment: the Figure 11 handshake lifted to frames.

The paper's synchronized channels already handshake per *bit* (RTS/RTR
cache-set signalling inside :mod:`repro.channels.sync`).  A payload
session needs the same alignment once per *connection*: before data
flows, sender and receiver must agree that both ends are live and on
the framing parameters (frame size, ARQ window, ECC) the session will
use.  That is a classic three-way exchange:

1. sender ships a ``SYN`` frame carrying the proposed
   :class:`SessionParams`;
2. the receiver echoes them in a ``SYNACK`` over the reverse channel;
3. the sender's first DATA frame doubles as the closing ACK (TCP-style
   piggyback — a covert channel has no bits to waste).

Control frames are never ECC-coded: parameters must decode before the
codec they negotiate is in effect.  Every wait is bounded — a dead or
jammed wire raises :class:`HandshakeError` after ``retries`` attempts
instead of polling forever (the failure mode the paper's "timeout and
repeat" recovery rule leaves open-ended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.channels.base import CovertChannel
from repro.transport.arq import WireTally
from repro.transport.framing import (
    MAX_PAYLOAD_BYTES,
    SYN,
    SYNACK,
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "HandshakeError",
    "SessionParams",
    "TransportError",
    "perform_handshake",
]


class TransportError(Exception):
    """Base class for transport-stack failures."""


class HandshakeError(TransportError):
    """Session establishment exhausted its bounded retries."""


@dataclass(frozen=True)
class SessionParams:
    """Frame/ARQ parameters both ends must agree on, SYN-encodable."""

    frame_bytes: int = 8
    window: int = 4
    ecc: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.frame_bytes <= MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"frame_bytes must be in [1, {MAX_PAYLOAD_BYTES}]")
        if not 1 <= self.window <= 255:
            raise ValueError("window must be in [1, 255]")

    def to_payload(self) -> bytes:
        """Three-byte SYN payload: frame size, window, flag bits."""
        return bytes([self.frame_bytes, self.window,
                      1 if self.ecc else 0])

    @classmethod
    def from_payload(cls, payload: bytes) -> "SessionParams":
        """Inverse of :meth:`to_payload`; raises ValueError on garbage."""
        if len(payload) != 3:
            raise ValueError(
                f"SYN payload must be 3 bytes, got {len(payload)}")
        return cls(frame_bytes=payload[0], window=payload[1],
                   ecc=bool(payload[2] & 1))


def perform_handshake(forward: CovertChannel,
                      reverse: Optional[CovertChannel],
                      params: SessionParams, *,
                      retries: int = 4,
                      tally: Optional[WireTally] = None) -> int:
    """Run the SYN/SYNACK exchange; returns the attempt count (1-based).

    Without a reverse channel the exchange degenerates to a one-way
    probe: a SYN that survives the forward wire intact proves the
    channel decodes frames, which is all blind mode can check.

    Raises :class:`HandshakeError` after ``retries`` failed attempts.
    """
    if retries < 1:
        raise ValueError("need at least one handshake attempt")
    if tally is None:
        tally = WireTally()
    syn = Frame(ftype=SYN, stream=0, seq=0, payload=params.to_payload())
    syn_wire = encode_frame(syn)  # control plane: never ECC
    for attempt in range(1, retries + 1):
        result = forward.transmit(syn_wire)
        tally.record(result, direction="fwd", kind="SYN")
        try:
            heard = decode_frame(result.received)
        except FrameError:
            continue
        if heard.ftype != SYN or heard.payload != params.to_payload():
            continue
        if reverse is None:
            return attempt
        echo_wire = encode_frame(
            Frame(ftype=SYNACK, stream=0, seq=0, payload=heard.payload))
        echo_result = reverse.transmit(echo_wire)
        tally.record(echo_result, direction="rev", kind="SYNACK")
        try:
            echo = decode_frame(echo_result.received)
        except FrameError:
            continue
        if echo.ftype == SYNACK and echo.payload == params.to_payload():
            return attempt
    raise HandshakeError(
        f"session handshake over {forward.name!r} failed after "
        f"{retries} attempt(s): the peer never echoed matching "
        f"parameters (dead channel, or noise above what un-coded "
        f"control frames survive)")
