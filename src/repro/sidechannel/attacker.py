"""Prime/probe key-recovery attacker.

Per trial (one chosen plaintext ``x``):

1. **Prime** — the attacker fills every L1 set with its own lines.
2. The **victim** encrypts ``x`` (one secret-dependent table lookup,
   repeated for reliability).
3. **Probe** — the attacker re-times its lines per set; the set the
   victim touched shows misses.

Cache state persists across kernel launches on an SM, so the three
steps are separate kernels sequenced from the host — the same
leftover-policy property the covert channels rely on.

For key guess ``g``, the predicted set for plaintext ``x`` is the set
of ``table[x ^ g]``; the guess (class) that matches the observed miss
sets across trials is the key's set-selecting bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.channels.primitives import (
    miss_fraction_threshold,
    prime_set,
    probe_set,
    set_addresses,
)
from repro.sim.gpu import Device
from repro.sim.kernel import Kernel, KernelConfig
from repro.sidechannel.victim import ENTRY_BYTES, TableLookupVictim

#: Context id of the attacking application.
ATTACKER_CONTEXT = 8


def recoverable_bits(device: Device) -> int:
    """Key bits recoverable at set granularity on this device's L1.

    The lookup index selects a table *line* (``index // entries_per_
    line``); probing resolves lines only up to their set, i.e.
    ``log2(n_sets)`` bits of the line index.
    """
    return (device.spec.const_l1.n_sets - 1).bit_length()


@dataclass
class AttackResult:
    """Outcome of a key-recovery attack."""

    best_guess_bits: int
    mask: int
    scores: Dict[int, int] = field(default_factory=dict)
    trials: int = 0

    def candidates(self) -> List[int]:
        """Guess classes ordered by descending score."""
        return sorted(self.scores, key=self.scores.get, reverse=True)


class PrimeProbeAttacker:
    """Recovers the victim key's set-selecting bits via prime/probe."""

    def __init__(self, device: Device, victim: TableLookupVictim, *,
                 decode_sm: int = 0) -> None:
        self.device = device
        self.victim = victim
        self.decode_sm = decode_sm
        spec = device.spec
        self.cache = spec.const_l1
        self.threshold = miss_fraction_threshold(
            self.cache, spec.const_l2.hit_latency)
        self._own_base = device.const_alloc(
            self.cache.size_bytes, align=self.cache.way_stride,
            label="attacker")
        self._entries_per_line = self.cache.line_bytes // ENTRY_BYTES

    # ------------------------------------------------------------------
    # Kernel bodies
    # ------------------------------------------------------------------
    def _prime_kernel(self) -> Kernel:
        def body(ctx):
            for s in range(self.cache.n_sets):
                yield from prime_set(
                    set_addresses(self._own_base, self.cache, s))
        return Kernel(body, KernelConfig(grid=self.device.spec.n_sms,
                                         block_threads=32),
                      name="attacker.prime", context=ATTACKER_CONTEXT)

    def _probe_kernel(self) -> Kernel:
        def body(ctx):
            lats = {}
            for s in range(self.cache.n_sets):
                latency = yield from probe_set(
                    set_addresses(self._own_base, self.cache, s))
                lats[s] = latency
            ctx.out.setdefault("lat", {})[ctx.smid] = lats
        return Kernel(body, KernelConfig(grid=self.device.spec.n_sms,
                                         block_threads=32),
                      name="attacker.probe", context=ATTACKER_CONTEXT)

    # ------------------------------------------------------------------
    def predicted_set(self, plaintext: int, guess: int) -> int:
        """Set the victim's lookup touches if the key were ``guess``."""
        addr = self.victim.lookup_addr(plaintext ^ guess)
        return self.cache.set_index(addr)

    def observe(self, plaintext: int) -> Dict[int, float]:
        """One prime → encrypt → probe trial; per-set probe latencies."""
        device = self.device
        device.launch(self._prime_kernel())
        device.synchronize()
        device.launch(self.victim.encrypt_kernel(plaintext))
        device.synchronize()
        probe = self._probe_kernel()
        device.launch(probe)
        device.synchronize()
        return probe.out["lat"][self.decode_sm]

    # ------------------------------------------------------------------
    def attack(self, plaintexts: Optional[List[int]] = None) -> AttackResult:
        """Run trials and score key-guess classes.

        Guesses are equivalence classes over the recoverable bits: keys
        whose lookup lines always share a set are indistinguishable, so
        one representative per class is scored.
        """
        if plaintexts is None:
            plaintexts = list(range(0, 256, 7))
        n_sets = self.cache.n_sets
        # Representatives: guess = class_index * entries_per_line keeps
        # one guess per distinct line-to-set mapping.
        reps = [c * self._entries_per_line for c in range(n_sets)]
        scores = {g: 0 for g in reps}
        for x in plaintexts:
            lats = self.observe(x)
            hot = max(lats, key=lats.get)
            if lats[hot] <= self.threshold:
                continue          # victim signal too weak this trial
            for g in reps:
                if self.predicted_set(x, g) == hot:
                    scores[g] += 1
        best = max(scores, key=scores.get)
        mask = (n_sets - 1) * self._entries_per_line
        return AttackResult(best_guess_bits=best, mask=mask,
                            scores=scores, trials=len(plaintexts))
