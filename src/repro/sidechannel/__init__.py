"""Side-channel proof of concept (the paper's stated future work).

Section 1 notes that "the presence of a covert channel can also
forecast the possibility of a side-channel attack", and the conclusion
lists GPU side channels as future work.  This package demonstrates the
forecast on the simulator: a *victim* kernel performs secret-dependent
table lookups in constant memory (the access pattern of a T-table
cipher), and an *attacker* recovers key bits with the same prime/probe
primitive the covert channel uses — no colluding trojan required.

Like real cache attacks, recovery granularity is bounded by the cache
geometry: probing distinguishes *sets*, so the attacker learns the
set-selecting bits of each key byte (3 bits on an 8-set L1, 4 on
Fermi's 16-set L1); the rest must be brute-forced.
"""

from repro.sidechannel.victim import TableLookupVictim
from repro.sidechannel.attacker import (
    AttackResult,
    PrimeProbeAttacker,
    recoverable_bits,
)

__all__ = [
    "AttackResult",
    "PrimeProbeAttacker",
    "TableLookupVictim",
    "recoverable_bits",
]
