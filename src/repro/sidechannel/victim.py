"""Victim application with a secret-dependent memory access pattern.

Models the structure of a table-based cipher kernel (the AES T-table
implementations attacked by Jiang et al. and Luo et al., which the
paper cites): for each input byte ``x`` the kernel looks up
``table[x ^ key]`` in constant memory.  The table spans multiple cache
lines, so which L1 *set* the lookup touches depends on ``x ^ key`` —
the leakage a prime/probe attacker harvests.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import isa
from repro.sim.gpu import Device
from repro.sim.kernel import Kernel, KernelConfig

#: Table entry size in bytes; 8 B entries over a 2 KB table give 256
#: entries across 32 lines (8 entries per 64 B line).
ENTRY_BYTES = 8

#: Context id of the victim application.
VICTIM_CONTEXT = 7


class TableLookupVictim:
    """A key-holding application that encrypts attacker-visible inputs."""

    def __init__(self, device: Device, key: int, *,
                 lookups_per_input: int = 12,
                 grid: Optional[int] = None) -> None:
        if not 0 <= key <= 255:
            raise ValueError("key must be one byte")
        self.device = device
        self._key = key          # private: the attacker must not read it
        self.lookups_per_input = lookups_per_input
        self.grid = grid if grid is not None else device.spec.n_sms
        cache = device.spec.const_l1
        self.table_base = device.const_alloc(
            256 * ENTRY_BYTES, align=cache.way_stride, label="t-table"
        )
        self._line_bytes = cache.line_bytes

    # ------------------------------------------------------------------
    def lookup_addr(self, index: int) -> int:
        """Constant-memory address of table entry ``index``."""
        return self.table_base + (index % 256) * ENTRY_BYTES

    def encrypt_kernel(self, input_byte: int) -> Kernel:
        """One 'encryption' of a known input byte (chosen plaintext)."""
        if not 0 <= input_byte <= 255:
            raise ValueError("input must be one byte")
        key = self._key
        n = self.lookups_per_input

        def body(ctx):
            index = input_byte ^ key
            addr = self.lookup_addr(index)
            for _ in range(n):
                yield isa.ConstLoad(addr)
                yield isa.FuOp("fadd")        # mixing arithmetic
        return Kernel(body, KernelConfig(grid=self.grid,
                                         block_threads=32),
                      name="victim.encrypt", context=VICTIM_CONTEXT)

    def check_guess(self, guess_bits: int, mask: int) -> bool:
        """Oracle used only by tests/examples to verify recovery."""
        return (self._key & mask) == (guess_bits & mask)
