"""Spec serialization and user-defined devices.

The paper's methodology "can be used for not only Nvidia GPUs, but also
a large class of placement algorithms"; downstream users will want to
point the toolkit at devices we did not ship.  Specs round-trip through
plain dictionaries (and therefore JSON), and a speculative
Pascal-class device is provided to exercise generalization: more SMs,
same leftover policy — the channels carry over unchanged.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.arch.specs import (
    CacheSpec,
    GPUSpec,
    KEPLER_K40C,
    MemorySpec,
    OpSpec,
)


def spec_to_dict(spec: GPUSpec) -> Dict[str, Any]:
    """Plain-dict form of a device spec (JSON-serializable)."""
    return dataclasses.asdict(spec)


def spec_from_dict(data: Dict[str, Any]) -> GPUSpec:
    """Rebuild a :class:`GPUSpec` from :func:`spec_to_dict` output."""
    payload = dict(data)
    payload["const_l1"] = CacheSpec(**payload["const_l1"])
    payload["const_l2"] = CacheSpec(**payload["const_l2"])
    payload["memory"] = MemorySpec(**payload["memory"])
    payload["ops"] = {name: OpSpec(**op)
                      for name, op in payload["ops"].items()}
    return GPUSpec(**payload)


def spec_to_json(spec: GPUSpec, indent: int = 2) -> str:
    """JSON text form of a device spec."""
    return json.dumps(spec_to_dict(spec), indent=indent)


def spec_from_json(text: str) -> GPUSpec:
    """Parse a device spec from JSON text."""
    return spec_from_dict(json.loads(text))


#: A speculative Pascal-class device for generalization experiments:
#: more SMs and a higher clock than the K40C, same scheduler structure
#: and leftover policy.  Not a paper device — used to show the attack
#: toolkit transfers to unseen configurations.
PASCAL_LIKE = KEPLER_K40C.with_overrides(
    name="Pascal-class (speculative)",
    generation="Pascal",
    n_sms=20,
    clock_mhz=1300.0,
    sp_units=128,
    dp_units=64,
    sfu_units=32,
    launch_overhead_cycles=14000.0,
)
