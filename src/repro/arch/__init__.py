"""Architecture specifications for the GPUs studied in the paper.

The paper (Table 1 and Section 2) evaluates three NVIDIA devices:

* Tesla C2075  (Fermi)
* Tesla K40C   (Kepler)
* Quadro M4000 (Maxwell)

:mod:`repro.arch.specs` encodes their per-SM resources, cache geometry,
instruction timing and multiprogramming limits as frozen dataclasses that
parameterize the simulator in :mod:`repro.sim`.
"""

from repro.arch.specs import (
    CacheSpec,
    FERMI_C2075,
    GPUSpec,
    KEPLER_K40C,
    MAXWELL_M4000,
    MemorySpec,
    OpSpec,
    SPEC_BY_NAME,
    WARP_SIZE,
    all_specs,
    get_spec,
)

__all__ = [
    "CacheSpec",
    "FERMI_C2075",
    "GPUSpec",
    "KEPLER_K40C",
    "MAXWELL_M4000",
    "MemorySpec",
    "OpSpec",
    "SPEC_BY_NAME",
    "WARP_SIZE",
    "all_specs",
    "get_spec",
]
