"""GPU architecture specifications.

Everything the simulator needs to model one of the paper's three devices
lives here: per-SM execution resources (Table 1 of the paper), constant
cache geometry (Section 4.1), instruction timing calibrated against the
latency plateaus of Figures 6 and 7, global-memory/atomic parameters
(Section 6), and the occupancy limits that drive the leftover block
scheduler (Section 3).

The specs are plain frozen dataclasses so they can be shared, hashed and
printed; the simulator never mutates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Tuple

#: SIMT width used by every NVIDIA architecture in the paper.
WARP_SIZE = 32


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and timing of one set-associative cache level.

    The paper reverse engineers the constant caches with the Wong et al.
    stride microbenchmark (Section 4.1): on Kepler/Maxwell the constant L1
    is 2 KB, 4-way, 64 B lines; on Fermi it is 4 KB.  The constant L2 is
    32 KB, 8-way, 256 B lines on all three devices.
    """

    size_bytes: int
    line_bytes: int
    ways: int
    #: Latency of a hit in this level, in SM clock cycles.
    hit_latency: float
    #: Cycles one access occupies the cache port (throughput bound).
    port_cycles: float = 1.0

    @property
    def n_sets(self) -> int:
        """Number of cache sets (``size / (line * ways)``)."""
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def way_stride(self) -> int:
        """Byte stride between two addresses mapping to the same set."""
        return self.line_bytes * self.n_sets

    def set_index(self, addr: int) -> int:
        """Cache set an address maps to (physically indexed, modulo)."""
        return (addr // self.line_bytes) % self.n_sets

    def tag(self, addr: int) -> int:
        """Tag for an address (line address above the set index)."""
        return addr // (self.line_bytes * self.n_sets)


@dataclass(frozen=True)
class OpSpec:
    """Timing of one arithmetic operation class.

    ``unit`` names the functional-unit pool (``"sp"``, ``"dpu"``,
    ``"sfu"``).  A warp-wide instruction occupies its scheduler's dispatch
    port for ``WARP_SIZE * passes / units_per_scheduler`` cycles; the
    result is available ``latency`` cycles after dispatch, plus a fixed
    ``overhead`` for composite software sequences (``sqrt`` is an SFU
    reciprocal plus Newton iterations on the SP units, which is why its
    plateau sits far above its contention slope in Figure 6).
    """

    unit: str
    latency: float
    passes: float = 1.0
    overhead: float = 0.0


@dataclass(frozen=True)
class MemorySpec:
    """Global memory and atomic-unit parameters (Section 6).

    On Kepler and Maxwell, atomic operations are resolved at the L2 cache
    by a comparatively large pool of fast atomic units (the paper cites a
    9x throughput improvement over Fermi, which resolves atomics near the
    DRAM partitions).
    """

    #: Latency of a global load that misses all caches, in cycles.
    load_latency: float
    #: Number of atomic units (device wide).
    atomic_units: int
    #: Cycles one atomic op occupies its unit (serialization cost).
    atomic_service: float
    #: Fixed cycles per memory transaction (segment) issued by a warp.
    transaction_cycles: float
    #: Size of a coalescing segment in bytes.
    segment_bytes: int = 256
    #: Device-memory capacity in bytes (informational).
    global_mem_bytes: int = 0


@dataclass(frozen=True)
class GPUSpec:
    """Full description of one GPGPU device.

    Per-SM execution resource counts reproduce Table 1 of the paper:

    ====================  ===============  ============  =============
    resource              Tesla C2075      Tesla K40C    Quadro M4000
    ====================  ===============  ============  =============
    warp schedulers       2                4             4
    dispatch units        2                8             8
    SP cores              32               192           128
    DP units              16               64            0
    SFUs                  4                32            32
    LD/ST units           16               32            32
    ====================  ===============  ============  =============
    """

    name: str
    generation: str
    n_sms: int
    clock_mhz: float

    # --- Table 1: per-SM execution resources -------------------------
    warp_schedulers: int
    dispatch_units: int
    sp_units: int
    dp_units: int
    sfu_units: int
    ldst_units: int

    # --- constant-memory cache hierarchy (Section 4.1) ---------------
    const_l1: CacheSpec
    const_l2: CacheSpec
    #: Latency of a constant load that misses L1 and L2, in cycles.
    const_mem_latency: float

    # --- occupancy limits used by the leftover block scheduler -------
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_warps_per_sm: int
    shared_mem_per_sm: int
    max_shared_mem_per_block: int
    registers_per_sm: int

    # --- host/runtime calibration ------------------------------------
    #: Cycles from ``stream.launch`` until blocks reach the scheduler.
    launch_overhead_cycles: float
    #: Extra host-side cycles consumed by a stream synchronization.
    sync_overhead_cycles: float
    #: Std-dev (cycles) of launch-time jitter between streams.
    launch_jitter_cycles: float
    #: Std-dev (cycles) of a single ``clock()`` read.
    clock_jitter_cycles: float

    # --- instruction timing and memory system ------------------------
    ops: Mapping[str, OpSpec] = field(default_factory=dict)
    memory: MemorySpec = field(
        default_factory=lambda: MemorySpec(400.0, 16, 4.0, 40.0)
    )
    const_mem_bytes: int = 64 * 1024
    warp_size: int = WARP_SIZE

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        """SM clock frequency in Hz."""
        return self.clock_mhz * 1e6

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.clock_hz

    def units_per_scheduler(self, unit: str) -> float:
        """Functional units of a type available to one warp scheduler.

        The paper's key Section 5 finding is that functional-unit
        contention is isolated per warp scheduler, even on Fermi/Kepler
        where the units are nominally soft-shared; we therefore model the
        pools as statically partitioned across schedulers.
        """
        counts = {"sp": self.sp_units, "dpu": self.dp_units,
                  "sfu": self.sfu_units, "ldst": self.ldst_units}
        try:
            total = counts[unit]
        except KeyError:
            raise KeyError(f"unknown functional unit type: {unit!r}")
        return total / self.warp_schedulers

    @property
    def issue_interval(self) -> float:
        """Minimum cycles between instruction issues of one scheduler."""
        return self.warp_schedulers / self.dispatch_units

    def op_spec(self, op: str) -> OpSpec:
        """Timing spec for an operation, raising for unsupported ops."""
        try:
            spec = self.ops[op]
        except KeyError:
            raise KeyError(f"{self.name} does not define op {op!r}")
        if self.units_per_scheduler(spec.unit) <= 0:
            raise UnsupportedOperation(
                f"{self.name} has no {spec.unit.upper()} units; "
                f"op {op!r} is unsupported (Table 1)."
            )
        return spec

    def op_occupancy(self, op: str) -> float:
        """Dispatch-port occupancy of one warp-wide op, in cycles.

        A warp has :data:`WARP_SIZE` lanes that must be pushed through
        ``units_per_scheduler`` pipelines, ``passes`` times; issue can
        never be faster than the scheduler's dispatch interval.
        """
        spec = self.op_spec(op)
        per_sched = self.units_per_scheduler(spec.unit)
        occupancy = self.warp_size * spec.passes / per_sched
        return max(occupancy, self.issue_interval)

    def supports_op(self, op: str) -> bool:
        """Whether this device can execute ``op`` at all."""
        try:
            self.op_spec(op)
        except (KeyError, UnsupportedOperation):
            return False
        return True

    def resource_table(self) -> Dict[str, int]:
        """Row of the paper's Table 1 for this device."""
        return {
            "Warp Scheduler": self.warp_schedulers,
            "Dispatch Unit": self.dispatch_units,
            "SP": self.sp_units,
            "DPU": self.dp_units,
            "SFU": self.sfu_units,
            "LD/ST": self.ldst_units,
        }

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Copy of this spec with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


class UnsupportedOperation(RuntimeError):
    """Raised when a kernel issues an op the device has no units for."""


def _ops(entries: Iterable[Tuple[str, OpSpec]]) -> Dict[str, OpSpec]:
    return dict(entries)


# ----------------------------------------------------------------------
# Tesla C2075 (Fermi)
# ----------------------------------------------------------------------
FERMI_C2075 = GPUSpec(
    name="Tesla C2075",
    generation="Fermi",
    n_sms=14,
    clock_mhz=1150.0,
    warp_schedulers=2,
    dispatch_units=2,
    sp_units=32,
    dp_units=16,
    sfu_units=4,
    ldst_units=16,
    const_l1=CacheSpec(size_bytes=4096, line_bytes=64, ways=4,
                       hit_latency=48.0, port_cycles=2.0),
    const_l2=CacheSpec(size_bytes=32 * 1024, line_bytes=256, ways=8,
                       hit_latency=120.0, port_cycles=4.0),
    const_mem_latency=380.0,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    max_warps_per_sm=48,
    shared_mem_per_sm=48 * 1024,
    max_shared_mem_per_block=48 * 1024,
    registers_per_sm=32768,
    launch_overhead_cycles=24500.0,
    sync_overhead_cycles=3000.0,
    launch_jitter_cycles=600.0,
    clock_jitter_cycles=3.0,
    ops=_ops([
        ("fadd", OpSpec(unit="sp", latency=16.0)),
        ("fmul", OpSpec(unit="sp", latency=16.0)),
        ("ffma", OpSpec(unit="sp", latency=18.0)),
        ("dadd", OpSpec(unit="dpu", latency=18.0)),
        ("dmul", OpSpec(unit="dpu", latency=18.0)),
        ("sinf", OpSpec(unit="sfu", latency=26.0, passes=1.2)),
        ("sqrt", OpSpec(unit="sfu", latency=40.0, passes=2.0,
                        overhead=60.0)),
        ("iadd", OpSpec(unit="sp", latency=16.0)),
    ]),
    memory=MemorySpec(
        load_latency=500.0,
        atomic_units=8,
        atomic_service=9.0,
        transaction_cycles=320.0,
        segment_bytes=256,
        global_mem_bytes=6 * 1024 ** 3,
    ),
)

# ----------------------------------------------------------------------
# Tesla K40C (Kepler)
# ----------------------------------------------------------------------
KEPLER_K40C = GPUSpec(
    name="Tesla K40C",
    generation="Kepler",
    n_sms=15,
    clock_mhz=745.0,
    warp_schedulers=4,
    dispatch_units=8,
    sp_units=192,
    dp_units=64,
    sfu_units=32,
    ldst_units=32,
    const_l1=CacheSpec(size_bytes=2048, line_bytes=64, ways=4,
                       hit_latency=44.0, port_cycles=1.0),
    const_l2=CacheSpec(size_bytes=32 * 1024, line_bytes=256, ways=8,
                       hit_latency=110.0, port_cycles=2.0),
    const_mem_latency=350.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_warps_per_sm=64,
    shared_mem_per_sm=48 * 1024,
    max_shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    launch_overhead_cycles=10300.0,
    sync_overhead_cycles=1200.0,
    launch_jitter_cycles=500.0,
    clock_jitter_cycles=2.0,
    ops=_ops([
        ("fadd", OpSpec(unit="sp", latency=7.0)),
        ("fmul", OpSpec(unit="sp", latency=7.0)),
        ("ffma", OpSpec(unit="sp", latency=8.0)),
        ("dadd", OpSpec(unit="dpu", latency=8.0)),
        ("dmul", OpSpec(unit="dpu", latency=8.0)),
        ("sinf", OpSpec(unit="sfu", latency=18.0)),
        ("sqrt", OpSpec(unit="sfu", latency=16.0, overhead=140.0)),
        ("iadd", OpSpec(unit="sp", latency=7.0)),
    ]),
    memory=MemorySpec(
        load_latency=350.0,
        atomic_units=32,
        atomic_service=1.0,
        transaction_cycles=60.0,
        segment_bytes=256,
        global_mem_bytes=12 * 1024 ** 3,
    ),
)

# ----------------------------------------------------------------------
# Quadro M4000 (Maxwell)
# ----------------------------------------------------------------------
MAXWELL_M4000 = GPUSpec(
    name="Quadro M4000",
    generation="Maxwell",
    n_sms=13,
    clock_mhz=773.0,
    warp_schedulers=4,
    dispatch_units=8,
    sp_units=128,
    dp_units=0,          # Table 1: Maxwell has no DP units.
    sfu_units=32,
    ldst_units=32,
    const_l1=CacheSpec(size_bytes=2048, line_bytes=64, ways=4,
                       hit_latency=44.0, port_cycles=1.0),
    const_l2=CacheSpec(size_bytes=32 * 1024, line_bytes=256, ways=8,
                       hit_latency=112.0, port_cycles=2.0),
    const_mem_latency=360.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    max_warps_per_sm=64,
    shared_mem_per_sm=96 * 1024,     # twice the per-block max (Section 8)
    max_shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    launch_overhead_cycles=10500.0,
    sync_overhead_cycles=1200.0,
    launch_jitter_cycles=500.0,
    clock_jitter_cycles=2.0,
    ops=_ops([
        ("fadd", OpSpec(unit="sp", latency=6.0, passes=1.2)),
        ("fmul", OpSpec(unit="sp", latency=6.0, passes=1.2)),
        ("ffma", OpSpec(unit="sp", latency=7.0, passes=1.2)),
        # Double precision is defined but unexecutable: Table 1 lists
        # zero DPUs, so op_spec() raises UnsupportedOperation.
        ("dadd", OpSpec(unit="dpu", latency=48.0)),
        ("dmul", OpSpec(unit="dpu", latency=48.0)),
        ("sinf", OpSpec(unit="sfu", latency=15.0)),
        ("sqrt", OpSpec(unit="sfu", latency=16.0, passes=2.5,
                        overhead=105.0)),
        ("iadd", OpSpec(unit="sp", latency=6.0, passes=1.2)),
    ]),
    memory=MemorySpec(
        load_latency=380.0,
        atomic_units=32,
        atomic_service=1.0,
        transaction_cycles=64.0,
        segment_bytes=256,
        global_mem_bytes=8 * 1024 ** 3,
    ),
)

#: All three paper devices, keyed by short generation name.
SPEC_BY_NAME: Dict[str, GPUSpec] = {
    "fermi": FERMI_C2075,
    "kepler": KEPLER_K40C,
    "maxwell": MAXWELL_M4000,
}


def get_spec(name: str) -> GPUSpec:
    """Look up a device spec by generation (``fermi``/``kepler``/``maxwell``)
    or by full device name (case insensitive)."""
    key = name.strip().lower()
    if key in SPEC_BY_NAME:
        return SPEC_BY_NAME[key]
    for spec in SPEC_BY_NAME.values():
        if spec.name.lower() == key:
            return spec
    raise KeyError(f"unknown GPU spec: {name!r}")


def all_specs() -> Tuple[GPUSpec, ...]:
    """The three paper devices in paper order (Fermi, Kepler, Maxwell)."""
    return (FERMI_C2075, KEPLER_K40C, MAXWELL_M4000)
