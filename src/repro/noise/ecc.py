"""Error-correcting codes for noisy covert channels (Section 8).

The paper's primary noise strategy is prevention (exclusive
co-location); when that is impossible it suggests "transmit error
correcting codes with the data (sacrificing some of the bandwidth)".
These are the standard constructions an attacker would reach for:

* repetition-N with majority decode,
* Hamming(7,4) single-error correction,
* block interleaving to spread burst errors across codewords.
"""

from __future__ import annotations

from typing import List, Sequence

Bits = Sequence[int]

#: Generator matrix rows for Hamming(7,4): codeword layout
#: [p1, p2, d1, p3, d2, d3, d4] with even parity.
_PARITY_COVERAGE = {
    0: (2, 4, 6),   # p1 covers d1, d2, d4
    1: (2, 5, 6),   # p2 covers d1, d3, d4
    3: (4, 5, 6),   # p3 covers d2, d3, d4
}


def repetition_encode(bits: Bits, n: int = 3) -> List[int]:
    """Repeat every bit ``n`` times (``n`` odd for a unique majority)."""
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be a positive odd number")
    out: List[int] = []
    for b in bits:
        out.extend([int(b)] * n)
    return out


def repetition_decode(coded: Bits, n: int = 3) -> List[int]:
    """Majority-decode a repetition-coded stream."""
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be a positive odd number")
    if len(coded) % n != 0:
        raise ValueError("coded length is not a multiple of the factor")
    out: List[int] = []
    for i in range(0, len(coded), n):
        ones = sum(int(b) for b in coded[i:i + n])
        out.append(1 if ones * 2 > n else 0)
    return out


def hamming74_encode(bits: Bits) -> List[int]:
    """Encode data bits (padded to a multiple of 4) as Hamming(7,4)."""
    data = [int(b) for b in bits]
    while len(data) % 4:
        data.append(0)
    out: List[int] = []
    for i in range(0, len(data), 4):
        d = data[i:i + 4]
        word = [0, 0, d[0], 0, d[1], d[2], d[3]]
        for p, covered in _PARITY_COVERAGE.items():
            word[p] = sum(word[c] for c in covered) % 2
        out.extend(word)
    return out


def hamming74_decode(coded: Bits) -> List[int]:
    """Decode Hamming(7,4), correcting one bit error per codeword."""
    if len(coded) % 7 != 0:
        raise ValueError("coded length must be a multiple of 7")
    out: List[int] = []
    for i in range(0, len(coded), 7):
        word = [int(b) for b in coded[i:i + 7]]
        syndrome = 0
        for bit_pos, (p, covered) in zip((1, 2, 4),
                                         _PARITY_COVERAGE.items()):
            parity = (word[p] + sum(word[c] for c in covered)) % 2
            if parity:
                syndrome += bit_pos
        if syndrome:
            word[syndrome - 1] ^= 1
        out.extend([word[2], word[4], word[5], word[6]])
    return out


#: CRC-8/ATM polynomial (x^8 + x^2 + x + 1).
_CRC8_POLY = 0x07


def crc8(bits: Bits) -> List[int]:
    """8-bit CRC over a bit stream (MSB-first), as a list of 8 bits."""
    reg = 0
    for b in bits:
        reg ^= (int(b) & 1) << 7
        msb = reg & 0x80
        reg = (reg << 1) & 0xFF
        if msb:
            reg ^= _CRC8_POLY
    return [(reg >> (7 - i)) & 1 for i in range(8)]


def crc8_check(bits: Bits, checksum: Bits) -> bool:
    """Verify a CRC-8 checksum produced by :func:`crc8`."""
    return crc8(bits) == [int(b) for b in checksum]


def interleave(bits: Bits, depth: int) -> List[int]:
    """Block-interleave so a burst of ``depth`` errors spreads out."""
    if depth < 1:
        raise ValueError("interleave depth must be >= 1")
    bits = [int(b) for b in bits]
    while len(bits) % depth:
        bits.append(0)
    rows = len(bits) // depth
    return [bits[r * depth + c]
            for c in range(depth) for r in range(rows)]


def deinterleave(bits: Bits, depth: int) -> List[int]:
    """Inverse of :func:`interleave` (same depth, padded length)."""
    if depth < 1:
        raise ValueError("interleave depth must be >= 1")
    bits = [int(b) for b in bits]
    if len(bits) % depth:
        raise ValueError("length must be a multiple of the depth")
    rows = len(bits) // depth
    out = [0] * len(bits)
    i = 0
    for c in range(depth):
        for r in range(rows):
            out[r * depth + c] = bits[i]
            i += 1
    return out
