"""Noise handling: error-correcting codes and channel-quality metrics.

Section 8 lists error correction as the fallback when exclusive
co-location is impossible; :mod:`repro.noise.ecc` provides repetition
and Hamming(7,4) codes plus interleaving, and :mod:`repro.noise.metrics`
the bit-error statistics used across the benchmark harness.
"""

from repro.noise.ecc import (
    crc8,
    crc8_check,
    hamming74_decode,
    hamming74_encode,
    interleave,
    deinterleave,
    repetition_decode,
    repetition_encode,
)
from repro.noise.metrics import BitErrorStats, compare_bits

__all__ = [
    "BitErrorStats",
    "compare_bits",
    "crc8",
    "crc8_check",
    "deinterleave",
    "hamming74_decode",
    "hamming74_encode",
    "interleave",
    "repetition_decode",
    "repetition_encode",
]
