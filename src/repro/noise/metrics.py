"""Bit-error statistics for channel evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

Bits = Sequence[int]


@dataclass(frozen=True)
class BitErrorStats:
    """Error breakdown of one transmission."""

    n_bits: int
    errors: int
    zero_to_one: int
    one_to_zero: int
    longest_burst: int

    @property
    def ber(self) -> float:
        """Bit error rate."""
        return self.errors / self.n_bits if self.n_bits else 0.0

    @property
    def error_free(self) -> bool:
        """True when no bit flipped."""
        return self.errors == 0


def compare_bits(sent: Bits, received: Bits) -> BitErrorStats:
    """Compare two bit streams position by position."""
    if len(sent) != len(received):
        raise ValueError(
            f"length mismatch: sent {len(sent)} vs received {len(received)}"
        )
    errors = zto = otz = 0
    burst = longest = 0
    for s, r in zip(sent, received):
        s, r = int(s), int(r)
        if s != r:
            errors += 1
            burst += 1
            longest = max(longest, burst)
            if s == 0:
                zto += 1
            else:
                otz += 1
        else:
            burst = 0
    return BitErrorStats(n_bits=len(sent), errors=errors,
                         zero_to_one=zto, one_to_zero=otz,
                         longest_burst=longest)
